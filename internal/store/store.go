// Package store is the sweep service's durable job/result store: every job
// the HTTP API accepts, its position in the queued → running →
// done/failed/canceled state machine, its per-cell progress, and one result
// row per completed cell — keyed by the cell's content-addressed cache key,
// so identical cells from different jobs share one row. A RetentionPolicy
// garbage-collects at checkpoint time: terminal jobs beyond the policy are
// pruned and rows no surviving job references are swept (shared rows
// survive until the last referencing job goes).
//
// Durability is stdlib-only — no cgo, no SQLite: an append-only write-ahead
// log of JSON records plus a periodic snapshot, both in one directory. Every
// mutation appends a WAL record first; reopening replays snapshot + WAL, so
// a crash at any point loses at most the unsynced tail (job-state
// transitions are fsynced; result rows ride on the next state sync, and a
// row lost to a crash is recomputed from the result cache on resume). A torn
// final record — the signature of a crash mid-append — is detected and
// truncated away on Open; corruption anywhere else is an error, never a
// silent skip.
//
// Snapshots are schema-versioned (SchemaVersion) with a startup migration
// path: Open upgrades an older snapshot step by step through the migrations
// table before serving it, and refuses a snapshot newer than the code.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// State is a job's position in the lifecycle state machine. The legal
// transitions are Queued → Running → (Done | Failed | Canceled), plus
// Queued → Canceled for a job canceled before it starts and Running →
// Queued when a drain or crash makes an in-flight job resumable. UpdateJob
// enforces these; a same-state update (progress counters) is always legal.
type State string

// Job lifecycle states.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether st is a terminal state: the job will never run
// again, which is what makes it eligible for retention-policy pruning.
func (st State) Terminal() bool {
	return st == Done || st == Failed || st == Canceled
}

// validTransition is the state machine: from == to is always legal (counter
// updates ride on the current state), everything else is enumerated.
func validTransition(from, to State) bool {
	if from == to {
		return true
	}
	switch from {
	case Queued:
		return to == Running || to == Canceled
	case Running:
		return to == Done || to == Failed || to == Canceled || to == Queued
	default: // terminal states never leave
		return false
	}
}

// Job is one accepted sweep: the matrix spec as submitted, where it is in
// the state machine, and its progress/summary counters. The JSON encoding is
// the API's job representation as well as the WAL/snapshot one.
type Job struct {
	// ID is the store-assigned identifier, monotonically increasing and
	// zero-padded so lexicographic order is creation order.
	ID string `json:"id"`
	// Spec is the matrix spec exactly as accepted (canonical JSON).
	Spec json.RawMessage `json:"spec"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Error holds the failure cause when State is Failed, and the resumable
	// note when a drain re-queued an in-flight job.
	Error string `json:"error,omitempty"`
	// Cells is the expanded matrix size; Completed counts cells whose result
	// has been emitted (and its row persisted), so Completed/Cells is the
	// job's progress bar.
	Cells     int `json:"cells"`
	Completed int `json:"completed"`
	// CacheHits/Computed/Resumed mirror the Runner's RunSummary for the
	// job's LAST execution: how many cells were served from the shared
	// result cache, how many were simulated, and how many of the hits were
	// inherited from an earlier (killed or duplicate) run. A resumed job's
	// Computed therefore counts only the cells that were actually missing.
	CacheHits int `json:"cacheHits"`
	Computed  int `json:"computed"`
	Resumed   int `json:"resumed"`
	// Created/Updated are unix timestamps (seconds).
	Created int64 `json:"created"`
	Updated int64 `json:"updated"`
}

// SchemaVersion stamps every snapshot this code writes. Bump it when the
// snapshot layout changes, and register the upgrade in migrations.
const SchemaVersion = 3

// Shard assignment states: a distributed job's shard is waiting for a
// worker, leased to one, or finished. There is no terminal failure state at
// the shard level — a failed attempt goes back to Pending with its attempt
// counter bumped, and the ATTEMPT CAP failing the whole job is the
// coordinator's policy, not the store's.
const (
	ShardPending  = "pending"
	ShardAssigned = "assigned"
	ShardDone     = "done"
)

// ShardAssignment is one shard of a distributed job's dispatch state: which
// contiguous Partition slice it is (Shard/Total), where it is in the
// pending → assigned → done machine, which worker leases it, and the
// retry/backoff bookkeeping that survives a coordinator restart (schema 3).
// Times are unix milliseconds — lease windows are sub-second in tests.
type ShardAssignment struct {
	Shard int    `json:"shard"`
	Total int    `json:"total"`
	State string `json:"state"`
	// Worker is the lease holder while State is ShardAssigned, and the
	// worker whose completion report closed the shard once ShardDone.
	Worker string `json:"worker,omitempty"`
	// Attempts counts executions so far: lease expiries and worker-reported
	// failures both bump it; the coordinator fails the job when it hits the
	// attempt cap.
	Attempts int `json:"attempts,omitempty"`
	// LeaseDeadline is when the current lease lapses (State ShardAssigned).
	LeaseDeadline int64 `json:"leaseDeadline,omitempty"`
	// NextEligible gates re-dispatch of a Pending shard: the exponential
	// backoff (with jitter) after a failed attempt.
	NextEligible int64 `json:"nextEligible,omitempty"`
	// Error is the most recent failure cause (lease expiry, worker report).
	Error string `json:"error,omitempty"`
}

// snapshot is the on-disk checkpoint: full store state at one WAL horizon.
type snapshot struct {
	Schema int                        `json:"schema"`
	Jobs   []Job                      `json:"jobs"`
	Rows   map[string]json.RawMessage `json:"rows"`
	// JobKeys maps a job ID to the content-addressed row keys its cells
	// emit, in index order — the reference edges garbage collection marks
	// from (schema 2).
	JobKeys map[string][]string `json:"jobKeys,omitempty"`
	// Assignments maps a job ID to its distributed-dispatch shard state, so
	// a coordinator restart resumes dispatch without recomputing finished
	// shards (schema 3).
	Assignments map[string][]ShardAssignment `json:"assignments,omitempty"`
}

// migrations upgrades a decoded snapshot one schema step at a time: the
// function at key v takes a valid schema-v snapshot to schema v+1. Schema 0
// is the legacy jobs-only layout from before result rows existed (no schema
// stamp, no rows map). Schema 1 predates per-job row keys; a migrated job
// has no key list, which GC treats as "references unknown" and refuses to
// sweep rows around (the service backfills keys from the stored spec at
// startup, after which sweeping resumes).
var migrations = map[int]func(*snapshot){
	0: func(s *snapshot) {
		if s.Rows == nil {
			s.Rows = map[string]json.RawMessage{}
		}
		s.Schema = 1
	},
	1: func(s *snapshot) {
		if s.JobKeys == nil {
			s.JobKeys = map[string][]string{}
		}
		s.Schema = 2
	},
	// Schema 2 predates distributed dispatch: no shard assignments. A
	// migrated job simply has none, which the coordinator treats as "never
	// dispatched" and partitions afresh when it claims the job.
	2: func(s *snapshot) {
		if s.Assignments == nil {
			s.Assignments = map[string][]ShardAssignment{}
		}
		s.Schema = 3
	},
}

// record is one WAL entry. Op "job" upserts a full job record (idempotent,
// last writer wins — replay order is append order); op "row" upserts one
// result row; op "keys" records a job's row-key list (ID + Keys fields) —
// the durable form of SetJobKeys, and the record a cancel rides on is a
// plain op "job" carrying the canceled state. Op "assign" upserts a job's
// full shard-assignment list (ID + Assign) — whole-list replacement keeps
// replay trivially idempotent, and a job's list is at most a handful of
// entries.
type record struct {
	Op     string            `json:"op"`
	Job    *Job              `json:"job,omitempty"`
	Key    string            `json:"key,omitempty"`
	Row    json.RawMessage   `json:"row,omitempty"`
	ID     string            `json:"id,omitempty"`
	Keys   []string          `json:"keys,omitempty"`
	Assign []ShardAssignment `json:"assign,omitempty"`
}

// defaultSnapshotEvery is how many WAL records accumulate before the store
// checkpoints into a fresh snapshot and truncates the log.
const defaultSnapshotEvery = 512

// RetentionPolicy bounds how much terminal-job history the store keeps.
// The zero policy retains everything (the pre-GC behavior). Non-terminal
// jobs are never pruned regardless of policy.
type RetentionPolicy struct {
	// MaxJobs, when > 0, keeps at most this many terminal jobs — the most
	// recently updated survive, older ones are pruned.
	MaxJobs int
	// MaxAge, when > 0, prunes terminal jobs whose last update is older
	// than this.
	MaxAge time.Duration
}

// active reports whether the policy prunes anything at all.
func (p RetentionPolicy) active() bool { return p.MaxJobs > 0 || p.MaxAge > 0 }

// Store is the open store. All methods are safe for concurrent use.
type Store struct {
	// SnapshotEvery is the WAL-records-per-snapshot threshold. Exported so
	// tests (and unusual deployments) can tune checkpoint frequency; change
	// it before concurrent use begins.
	SnapshotEvery int
	// Retention is applied at every checkpoint: terminal jobs beyond the
	// policy are pruned, and rows no surviving job references are swept
	// (rows shared by content address across jobs survive until the last
	// referencing job is pruned). Change it before concurrent use begins;
	// the zero policy disables GC.
	Retention RetentionPolicy

	mu          sync.Mutex
	dir         string
	wal         *os.File
	jobs        map[string]Job
	rows        map[string]json.RawMessage
	jobKeys     map[string][]string
	assignments map[string][]ShardAssignment
	walRecords  int
	seq         int
	closed      bool
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Open creates (if needed) and opens the store rooted at dir: load the
// snapshot, migrate it to SchemaVersion if it is older, replay the WAL on
// top, and truncate a torn final record left by a crash mid-append.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		SnapshotEvery: defaultSnapshotEvery,
		dir:           dir,
		jobs:          make(map[string]Job),
		rows:          make(map[string]json.RawMessage),
		jobKeys:       make(map[string][]string),
		assignments:   make(map[string][]ShardAssignment),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = wal
	for id := range s.jobs {
		var n int
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// loadSnapshot reads and migrates the checkpoint, if one exists.
func (s *Store) loadSnapshot() error {
	raw, err := os.ReadFile(s.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	if snap.Schema > SchemaVersion {
		return fmt.Errorf("store: snapshot schema %d is newer than this binary's %d; refusing to downgrade",
			snap.Schema, SchemaVersion)
	}
	for snap.Schema < SchemaVersion {
		migrate, ok := migrations[snap.Schema]
		if !ok {
			return fmt.Errorf("store: no migration from snapshot schema %d", snap.Schema)
		}
		migrate(&snap)
	}
	for _, j := range snap.Jobs {
		s.jobs[j.ID] = j
	}
	for k, v := range snap.Rows {
		s.rows[k] = v
	}
	for id, keys := range snap.JobKeys {
		s.jobKeys[id] = keys
	}
	for id, assigns := range snap.Assignments {
		s.assignments[id] = assigns
	}
	return nil
}

// replayWAL applies every record appended since the snapshot. A torn final
// record (crash mid-append) is truncated away; a malformed record anywhere
// else is corruption and surfaces as an error.
func (s *Store) replayWAL() error {
	raw, err := os.ReadFile(s.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read wal: %w", err)
	}
	offset := 0
	for offset < len(raw) {
		nl := bytes.IndexByte(raw[offset:], '\n')
		line := raw[offset:]
		torn := nl < 0
		if !torn {
			line = raw[offset : offset+nl]
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || torn {
			if offset+len(line) >= len(raw) || torn {
				// Last record of the file and undecodable: the torn tail of
				// a crashed append. Cut it so future appends start clean.
				if terr := os.Truncate(s.walPath(), int64(offset)); terr != nil {
					return fmt.Errorf("store: truncate torn wal tail: %w", terr)
				}
				return nil
			}
			return fmt.Errorf("store: corrupt wal record at byte %d: %v", offset, err)
		}
		s.apply(rec)
		s.walRecords++
		offset += nl + 1
	}
	return nil
}

// apply folds one WAL record into the in-memory state.
func (s *Store) apply(rec record) {
	switch rec.Op {
	case "job":
		if rec.Job != nil {
			s.jobs[rec.Job.ID] = *rec.Job
		}
	case "row":
		if rec.Key != "" {
			s.rows[rec.Key] = rec.Row
		}
	case "keys":
		if rec.ID != "" {
			s.jobKeys[rec.ID] = rec.Keys
		}
	case "assign":
		if rec.ID != "" {
			s.assignments[rec.ID] = rec.Assign
		}
	}
}

// append writes one record to the WAL (and applies it), checkpointing into a
// snapshot when the log has grown past SnapshotEvery records. sync forces
// the record — and, by fsync semantics, every record before it — to disk
// before returning; state transitions sync, high-rate row/progress records
// ride on the next synced append.
func (s *Store) append(rec record, sync bool) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := s.wal.Write(raw); err != nil {
		return fmt.Errorf("store: append wal: %w", err)
	}
	if sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: sync wal: %w", err)
		}
	}
	s.apply(rec)
	s.walRecords++
	if s.walRecords >= s.SnapshotEvery {
		s.gc()
		if err := s.checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// gc applies the retention policy: prune terminal jobs beyond the policy,
// then sweep rows no surviving job references. Caller holds s.mu. The
// deletions live only in memory — durability comes from the checkpoint the
// caller writes immediately after (a crash in between resurrects the pruned
// state from the old snapshot+WAL, and the next GC prunes it again).
//
// Sweeping is mark-and-sweep over the jobKeys reference lists, which is
// where the refcount semantics come from: a row shared by several jobs
// stays marked until the last job referencing it is pruned. If any
// surviving job has NO recorded key list (a schema-1 job the service has
// not backfilled yet), its references are unknown, so row sweeping is
// skipped entirely rather than risk deleting a row a live job still needs.
func (s *Store) gc() (jobsPruned, rowsSwept int) {
	if !s.Retention.active() {
		return 0, 0
	}
	var terminal []Job
	for _, j := range s.jobs {
		if j.State.Terminal() {
			terminal = append(terminal, j)
		}
	}
	// Oldest first: by last update, then by ID for a stable order when
	// timestamps tie (they are whole seconds).
	sort.Slice(terminal, func(i, k int) bool {
		if terminal[i].Updated != terminal[k].Updated {
			return terminal[i].Updated < terminal[k].Updated
		}
		return terminal[i].ID < terminal[k].ID
	})
	keep := len(terminal)
	if s.Retention.MaxJobs > 0 && keep > s.Retention.MaxJobs {
		keep = s.Retention.MaxJobs
	}
	cutoff := int64(0)
	if s.Retention.MaxAge > 0 {
		cutoff = time.Now().Add(-s.Retention.MaxAge).Unix()
	}
	for i, j := range terminal {
		tooMany := i < len(terminal)-keep
		tooOld := cutoff > 0 && j.Updated < cutoff
		if tooMany || tooOld {
			delete(s.jobs, j.ID)
			delete(s.jobKeys, j.ID)
			delete(s.assignments, j.ID)
			jobsPruned++
		}
	}
	if jobsPruned == 0 {
		return 0, 0
	}
	live := make(map[string]struct{})
	for id := range s.jobs {
		keys, known := s.jobKeys[id]
		if !known {
			return jobsPruned, 0 // unknown references: never sweep around them
		}
		for _, k := range keys {
			live[k] = struct{}{}
		}
	}
	for k := range s.rows {
		if _, ok := live[k]; !ok {
			delete(s.rows, k)
			rowsSwept++
		}
	}
	return jobsPruned, rowsSwept
}

// GC applies the retention policy immediately and checkpoints the pruned
// state, reporting how many jobs were pruned and rows swept. Deployments
// that never hit the WAL threshold (or want deterministic cleanup at
// startup) call this; steady-state pruning happens at every checkpoint
// anyway.
func (s *Store) GC() (jobsPruned, rowsSwept int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("store: closed")
	}
	jobsPruned, rowsSwept = s.gc()
	if err := s.checkpoint(); err != nil {
		return jobsPruned, rowsSwept, err
	}
	return jobsPruned, rowsSwept, nil
}

// checkpoint writes the full state as a fresh snapshot (atomic tmp+rename)
// and truncates the WAL. A crash between the rename and the truncate is
// safe: replaying the old records onto the new snapshot is idempotent.
func (s *Store) checkpoint() error {
	snap := snapshot{Schema: SchemaVersion, Jobs: s.jobList(), Rows: s.rows,
		JobKeys: s.jobKeys, Assignments: s.assignments}
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot.tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.snapshotPath()); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	s.walRecords = 0
	return nil
}

// jobList returns the jobs sorted by ID (creation order).
func (s *Store) jobList() []Job {
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Close checkpoints the state and closes the WAL. Further mutations error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.gc()
	err := s.checkpoint()
	s.closed = true
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// CreateJob durably records a new job in state Queued and assigns its ID.
func (s *Store) CreateJob(spec json.RawMessage, cells int) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	now := time.Now().Unix()
	job := Job{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Spec:    spec,
		State:   Queued,
		Cells:   cells,
		Created: now,
		Updated: now,
	}
	if err := s.append(record{Op: "job", Job: &job}, true); err != nil {
		s.seq--
		return Job{}, err
	}
	return job, nil
}

// UpdateJob applies mutate to the job and durably records the result when
// sync is true (state transitions); progress counters pass sync false and
// are flushed by the next synced append. A mutate that attempts an illegal
// state transition (see validTransition) is rejected without writing
// anything — terminal states, including Canceled, are final.
func (s *Store) UpdateJob(id string, sync bool, mutate func(*Job)) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("store: no job %q", id)
	}
	from := job.State
	mutate(&job)
	job.ID = id // the identity is not the caller's to change
	if !validTransition(from, job.State) {
		return Job{}, fmt.Errorf("store: job %s: illegal transition %s → %s", id, from, job.State)
	}
	job.Updated = time.Now().Unix()
	if err := s.append(record{Op: "job", Job: &job}, sync); err != nil {
		return Job{}, err
	}
	return job, nil
}

// SetJobKeys durably records the content-addressed row keys job id's cells
// emit, in index order. The service writes this once at submission; GC
// marks live rows from these lists, so a job with recorded keys keeps its
// rows alive (shared or not) until the job itself is pruned.
func (s *Store) SetJobKeys(id string, keys []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return fmt.Errorf("store: no job %q", id)
	}
	return s.append(record{Op: "keys", ID: id, Keys: keys}, false)
}

// JobKeys returns the recorded row-key list for job id, and whether one was
// ever recorded (schema-1 jobs have none until backfilled).
func (s *Store) JobKeys(id string) ([]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys, ok := s.jobKeys[id]
	return keys, ok
}

// SetAssignments durably replaces job id's shard-assignment list. sync
// forces the record to disk before returning: the coordinator syncs when a
// shard reaches ShardDone (losing done-ness to a crash would recompute the
// shard) and lets lease renewals and grants ride the next synced append —
// an assignment lost to a crash is merely re-dispatched.
func (s *Store) SetAssignments(id string, assigns []ShardAssignment, sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return fmt.Errorf("store: no job %q", id)
	}
	cp := make([]ShardAssignment, len(assigns))
	copy(cp, assigns)
	return s.append(record{Op: "assign", ID: id, Assign: cp}, sync)
}

// Assignments returns a copy of job id's shard-assignment list, and whether
// the job was ever dispatched (a job from before schema 3, or one always run
// locally, has none).
func (s *Store) Assignments(id string) ([]ShardAssignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	assigns, ok := s.assignments[id]
	cp := make([]ShardAssignment, len(assigns))
	copy(cp, assigns)
	return cp, ok
}

// Job returns the job by ID.
func (s *Store) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// Jobs returns every job, sorted by ID (creation order).
func (s *Store) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobList()
}

// PutRow upserts one result row under its content-addressed cache key. Rows
// are deduplicated by key across jobs: two jobs whose matrices share a cell
// share its row. Not synced — a row lost to a crash is recomputed from the
// result cache when the job resumes.
func (s *Store) PutRow(key string, row []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty row key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "row", Key: key, Row: json.RawMessage(row)}, false)
}

// Row returns the result row stored under key.
func (s *Store) Row(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	row, ok := s.rows[key]
	return row, ok
}

// RowCount reports how many distinct result rows the store holds.
func (s *Store) RowCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}
