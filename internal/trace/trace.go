// Package trace provides the simulation's two trace facilities:
//
//   - structured per-round event recording (Recorder) for protocol
//     debugging and post-hoc analysis — what happened when, at which node —
//     rendered as text or JSON for external tooling;
//   - trace-driven radio replay (LinkTrace, Channel): recorded per-link PRR
//     matrices, loadable from CSV/JSON, wrapped as a phy.Radio backend so
//     protocols run over measured testbed link qualities instead of a
//     propagation model.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the protocol round runner.
const (
	// KindShareGen — a source finished generating/sealing its shares.
	KindShareGen Kind = "share-gen"
	// KindPhase — a protocol phase completed (detail names it).
	KindPhase Kind = "phase"
	// KindSumComplete — a destination aggregated shares from every source.
	KindSumComplete Kind = "sum-complete"
	// KindSumIncomplete — a destination missed at least one share.
	KindSumIncomplete Kind = "sum-incomplete"
	// KindAggregateOK — a node reconstructed the correct aggregate.
	KindAggregateOK Kind = "aggregate-ok"
	// KindAggregateFail — a node could not reconstruct.
	KindAggregateFail Kind = "aggregate-fail"
)

// Event is one timestamped protocol occurrence.
type Event struct {
	// At is the virtual time offset from round start.
	At time.Duration `json:"atNs"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Node is the node concerned (-1 for network-wide events).
	Node int `json:"node"`
	// Detail carries free-form context.
	Detail string `json:"detail,omitempty"`
}

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder is a valid no-op sink, so instrumentation can be left in place
// unconditionally.
type Recorder struct {
	events []Event
}

// Record appends an event. Safe on a nil receiver (no-op).
func (r *Recorder) Record(at time.Duration, kind Kind, node int, detail string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: kind, Node: node, Detail: detail})
}

// Events returns a copy of the recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// CountByKind tallies events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	counts := make(map[Kind]int)
	if r == nil {
		return counts
	}
	for _, e := range r.events {
		counts[e.Kind]++
	}
	return counts
}

// JSON renders the trace as a JSON array.
func (r *Recorder) JSON() ([]byte, error) {
	if r == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(r.events)
}

// Summary renders a compact text digest: per-kind counts in kind order.
func (r *Recorder) Summary() string {
	counts := r.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "%d events", r.Len())
	for _, k := range kinds {
		fmt.Fprintf(&b, ", %s=%d", k, counts[Kind(k)])
	}
	return b.String()
}
