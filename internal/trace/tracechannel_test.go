package trace

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"iotmpc/internal/phy"
)

func triChannel(t *testing.T) *Channel {
	t.Helper()
	tr, err := ParseCSV([]byte(validCSV))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(phy.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestChannelReplaysPRR(t *testing.T) {
	ch := triChannel(t)
	if n := ch.NumNodes(); n != 3 {
		t.Fatalf("NumNodes %d", n)
	}
	for _, tc := range []struct {
		tx, rx int
		want   float64
	}{{0, 1, 0.9}, {1, 0, 0.8}, {0, 2, 0.25}, {2, 0, 0}, {1, 1, 0}} {
		prr, err := ch.PRR(tc.tx, tc.rx)
		if err != nil {
			t.Fatal(err)
		}
		if prr != tc.want {
			t.Fatalf("PRR(%d,%d) = %v, want %v", tc.tx, tc.rx, prr, tc.want)
		}
	}
	if _, err := ch.PRR(0, 9); !errors.Is(err, phy.ErrNodeIndex) {
		t.Fatalf("out of range: %v", err)
	}
}

func TestChannelCertainOutcomesConsumeNoRandomness(t *testing.T) {
	tr, err := ParseCSV([]byte("nodes,3\n0,1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(phy.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// PRR 1 and PRR 0 links decide without touching the (nil) RNG.
	if ok, err := ch.ReceiveSingle(0, 1, nil); err != nil || !ok {
		t.Fatalf("certain link: %v %v", ok, err)
	}
	if ok, err := ch.ReceiveSingle(1, 2, nil); err != nil || ok {
		t.Fatalf("absent link: %v %v", ok, err)
	}
	if ok, err := ch.ReceiveConcurrentFast(1, []int{0, 2}, nil); err != nil || !ok {
		t.Fatalf("union with a certain link: %v %v", ok, err)
	}
}

func TestChannelUnionReception(t *testing.T) {
	// Two 0.5 links to node 1: union probability 0.75. Check the empirical
	// rate of the Bernoulli draw against the exact union probability.
	tr, err := ParseJSON([]byte(`{"nodes":3,"links":[
		{"tx":0,"rx":1,"prr":0.5},{"tx":2,"rx":1,"prr":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(phy.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const trials = 20000
	got := 0
	for i := 0; i < trials; i++ {
		ok, err := ch.ReceiveConcurrent(1, []int{0, 2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got++
		}
	}
	rate := float64(got) / trials
	if math.Abs(rate-0.75) > 0.02 {
		t.Fatalf("union reception rate %v, want ≈0.75", rate)
	}
}

func TestChannelMeanRSSIMonotoneInPRR(t *testing.T) {
	ch := triChannel(t)
	strong, err := ch.MeanRSSI(0, 1) // PRR 0.9
	if err != nil {
		t.Fatal(err)
	}
	weak, err := ch.MeanRSSI(0, 2) // PRR 0.25
	if err != nil {
		t.Fatal(err)
	}
	dead, err := ch.MeanRSSI(2, 0) // PRR 0
	if err != nil {
		t.Fatal(err)
	}
	if !(strong > weak && weak > dead) {
		t.Fatalf("RSSI not monotone in PRR: %v %v %v", strong, weak, dead)
	}
	if dead >= ch.Params().SensitivityDBm {
		t.Fatalf("dead link RSSI %v above sensitivity", dead)
	}
	self, err := ch.MeanRSSI(1, 1)
	if err != nil || !math.IsInf(self, -1) {
		t.Fatalf("self RSSI %v %v", self, err)
	}
}

func TestChannelCapture(t *testing.T) {
	// Node 1 hears 0 at 0.9; 2→1 at 0.5. The 0.9 link is the capture
	// candidate; a lone out-of-range transmitter is never captured.
	ch := triChannel(t)
	rng := rand.New(rand.NewSource(3))
	sawCapture := false
	for i := 0; i < 200; i++ {
		got, err := ch.ReceiveCapture(1, []int{0, 2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got == 1 {
			t.Fatal("captured the weaker transmitter")
		}
		sawCapture = sawCapture || got == 0
	}
	if !sawCapture {
		t.Fatal("strong link never captured in 200 draws")
	}
	if got, err := ch.ReceiveCapture(0, []int{2}, nil); err != nil || got != -1 {
		t.Fatalf("dead-link capture: %v %v", got, err)
	}
}

func TestFactoryEnforcesNodeCount(t *testing.T) {
	tr, err := Bundled("line5")
	if err != nil {
		t.Fatal(err)
	}
	factory := Factory(tr)
	if _, err := factory(phy.DefaultParams(), make([]phy.Position, 5), 1); err != nil {
		t.Fatalf("matching node count: %v", err)
	}
	if _, err := factory(phy.DefaultParams(), make([]phy.Position, 8), 1); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("mismatched node count: %v", err)
	}
}

// TestChannelDeterministicReplay runs the same reception sequence twice
// with identical RNG seeds: a trace backend must be bit-reproducible.
func TestChannelDeterministicReplay(t *testing.T) {
	tr, err := Bundled("testbed10")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(phy.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		rng := rand.New(rand.NewSource(42))
		var out []bool
		for rx := 0; rx < ch.NumNodes(); rx++ {
			for tx := 0; tx < ch.NumNodes(); tx++ {
				if tx == rx {
					continue
				}
				ok, err := ch.ReceiveSingle(tx, rx, rng)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, ok)
			}
			ok, err := ch.ReceiveConcurrentFast(rx, []int{(rx + 1) % ch.NumNodes()}, rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ok)
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("trace replay diverged across identical runs")
	}
}

// TestChannelGraphQueries drives the shared phy graph helpers over the
// trace backend: the bundled line5 trace is a line at threshold 0.5.
func TestChannelGraphQueries(t *testing.T) {
	tr, err := Bundled("line5")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(phy.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := phy.HopDistances(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dist {
		if d != i {
			t.Fatalf("hop distance of node %d = %d, want %d", i, d, i)
		}
	}
	diam, connected, err := phy.Diameter(ch, 0.5)
	if err != nil || !connected || diam != 4 {
		t.Fatalf("diameter %d connected=%v err=%v, want 4 true", diam, connected, err)
	}
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(phy.DefaultParams(), nil); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("nil trace: %v", err)
	}
	bad := phy.DefaultParams()
	bad.BitrateBps = 0
	tr, _ := ParseCSV([]byte("nodes,2\n0,1,1\n"))
	if _, err := NewChannel(bad, tr); !errors.Is(err, phy.ErrBadParams) {
		t.Fatalf("bad params: %v", err)
	}
	// Hand-built ragged matrices must be rejected, not panic later.
	ragged := &LinkTrace{Nodes: 3, PRR: [][]float64{{0, 1}, {0, 0, 1}, {1, 0, 0}}}
	if _, err := NewChannel(phy.DefaultParams(), ragged); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("ragged trace: %v", err)
	}
}
