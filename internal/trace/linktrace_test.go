package trace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const validCSV = `# survey of a triangle
nodes,3
name,tri
tx,rx,prr
0,1,0.9
1,0,0.8
1,2,0.5
2,1,0.5
0,2,0.25
`

const validJSON = `{"name":"tri","nodes":3,"links":[
{"tx":0,"rx":1,"prr":0.9},{"tx":1,"rx":0,"prr":0.8},
{"tx":1,"rx":2,"prr":0.5},{"tx":2,"rx":1,"prr":0.5},
{"tx":0,"rx":2,"prr":0.25}]}`

func TestParseCSV(t *testing.T) {
	tr, err := ParseCSV([]byte(validCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "tri" || tr.Nodes != 3 {
		t.Fatalf("parsed %q/%d", tr.Name, tr.Nodes)
	}
	if tr.PRR[0][1] != 0.9 || tr.PRR[1][0] != 0.8 || tr.PRR[0][2] != 0.25 {
		t.Fatalf("matrix %v", tr.PRR)
	}
	if tr.PRR[2][0] != 0 {
		t.Fatalf("unrecorded link nonzero: %v", tr.PRR[2][0])
	}
}

func TestParseJSONMatchesCSV(t *testing.T) {
	fromCSV, err := ParseCSV([]byte(validCSV))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseJSON([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromCSV, fromJSON) {
		t.Fatalf("CSV and JSON forms of the same trace differ:\n%+v\n%+v", fromCSV, fromJSON)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a, err := ParseCSV([]byte(validCSV))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCSV(a.MarshalCSV())
	if err != nil {
		t.Fatalf("reparse of serialized trace: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("CSV round trip unstable:\n%+v\n%+v", a, b)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a, err := ParseJSON([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseJSON(raw)
	if err != nil {
		t.Fatalf("reparse of serialized trace: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("JSON round trip unstable:\n%+v\n%+v", a, b)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"comments only":    "# nothing\n\n",
		"missing header":   "0,1,0.5\n",
		"bad node count":   "nodes,zebra\n",
		"one node":         "nodes,1\n",
		"too many nodes":   "nodes,1000000\n",
		"short line":       "nodes,3\n0,1\n",
		"long line":        "nodes,3\n0,1,0.5,extra\n",
		"bad tx":           "nodes,3\nx,1,0.5\n",
		"bad rx":           "nodes,3\n0,y,0.5\n",
		"bad prr":          "nodes,3\n0,1,huh\n",
		"tx out of range":  "nodes,3\n3,1,0.5\n",
		"negative rx":      "nodes,3\n0,-1,0.5\n",
		"self link":        "nodes,3\n1,1,0.5\n",
		"prr above one":    "nodes,3\n0,1,1.5\n",
		"prr negative":     "nodes,3\n0,1,-0.5\n",
		"prr NaN":          "nodes,3\n0,1,NaN\n",
		"duplicate link":   "nodes,3\n0,1,0.5\n0,1,0.6\n",
		"header not first": "name,x\nnodes,3\n",
	}
	for name, input := range cases {
		if _, err := ParseCSV([]byte(input)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: error %v, want ErrBadTrace", name, err)
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not json":       "nodes,3",
		"truncated":      `{"nodes":3,"links":[`,
		"unknown field":  `{"nodes":3,"bogus":1,"links":[]}`,
		"trailing data":  `{"nodes":3,"links":[]}{"nodes":4}`,
		"one node":       `{"nodes":1,"links":[]}`,
		"self link":      `{"nodes":3,"links":[{"tx":1,"rx":1,"prr":0.5}]}`,
		"out of range":   `{"nodes":3,"links":[{"tx":0,"rx":9,"prr":0.5}]}`,
		"prr above one":  `{"nodes":3,"links":[{"tx":0,"rx":1,"prr":2}]}`,
		"duplicate link": `{"nodes":3,"links":[{"tx":0,"rx":1,"prr":0.5},{"tx":0,"rx":1,"prr":0.4}]}`,
		"float nodes":    `{"nodes":2.5,"links":[]}`,
	}
	for name, input := range cases {
		if _, err := ParseJSON([]byte(input)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: error %v, want ErrBadTrace", name, err)
		}
	}
}

func TestLoadDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	jsonPath := filepath.Join(dir, "t.json")
	badPath := filepath.Join(dir, "t.xml")
	if err := os.WriteFile(csvPath, []byte(validCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(badPath, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Load(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Load of equivalent CSV and JSON differ")
	}
	if _, err := Load(badPath); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("unsupported extension: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestBundledTraces(t *testing.T) {
	names := BundledNames()
	if len(names) != 2 {
		t.Fatalf("bundled traces %v, want 2", names)
	}
	for _, name := range names {
		tr, err := Bundled(name)
		if err != nil {
			t.Fatalf("bundled %q: %v", name, err)
		}
		if tr.Nodes < 2 || tr.Name != name {
			t.Fatalf("bundled %q: nodes=%d name=%q", name, tr.Nodes, tr.Name)
		}
		// Bundled surveys record symmetric links.
		for i := 0; i < tr.Nodes; i++ {
			for j := 0; j < tr.Nodes; j++ {
				if tr.PRR[i][j] != tr.PRR[j][i] {
					t.Fatalf("bundled %q: asymmetric link (%d,%d)", name, i, j)
				}
			}
		}
	}
	if _, err := Bundled("no-such-trace"); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("unknown bundled name: %v", err)
	}
	// The names the rest of the repo (docs, scenario tests) refer to.
	for _, want := range []string{"line5", "testbed10"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("bundled set %v missing %q", names, want)
		}
	}
}

func TestMarshalCSVDropsCommentsKeepsName(t *testing.T) {
	tr, err := ParseCSV([]byte(validCSV))
	if err != nil {
		t.Fatal(err)
	}
	out := string(tr.MarshalCSV())
	if strings.Contains(out, "#") {
		t.Fatalf("serialized trace kept comments:\n%s", out)
	}
	if !strings.Contains(out, "name,tri") || !strings.HasPrefix(out, "nodes,3\n") {
		t.Fatalf("serialized trace malformed:\n%s", out)
	}
}

// TestMarshalCSVSanitizesName: a JSON-sourced or hand-built name may carry
// line breaks; serializing it as CSV must not inject records.
func TestMarshalCSVSanitizesName(t *testing.T) {
	tr, err := ParseJSON([]byte(`{"name":"x\n0,1,0.5","nodes":3,"links":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseCSV(tr.MarshalCSV())
	if err != nil {
		t.Fatalf("reparse of sanitized CSV: %v", err)
	}
	for i := range again.PRR {
		for j, prr := range again.PRR[i] {
			if prr != 0 {
				t.Fatalf("name injected link (%d,%d)=%v", i, j, prr)
			}
		}
	}
	if strings.ContainsAny(again.Name, "\r\n") {
		t.Fatalf("name kept line break: %q", again.Name)
	}
}

// TestCSVRoundTripCarriageReturnName: interior CR in a name line must be
// canonicalized at parse time, or parse → serialize → parse diverges.
func TestCSVRoundTripCarriageReturnName(t *testing.T) {
	a, err := ParseCSV([]byte("nodes,2\nname,a\rb\n0,1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(a.Name, "\r") {
		t.Fatalf("parse kept CR in name: %q", a.Name)
	}
	b, err := ParseCSV(a.MarshalCSV())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("CR-name round trip unstable: %+v vs %+v", a, b)
	}
}
