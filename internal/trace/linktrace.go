package trace

import (
	"embed"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Link traces: recorded per-link packet-reception-ratio matrices, the data
// behind the trace-driven radio backend (Channel). A trace is what a testbed
// link-quality survey produces — for every directed pair (tx, rx), the
// long-run fraction of packets rx hears from tx — serialized as either a
// compact CSV or a JSON document. Two small example traces are bundled with
// the package (Bundled / BundledNames) so trace-driven scenarios run out of
// the box.

// Errors returned by trace parsing and channel construction.
var (
	// ErrBadTrace is returned for malformed or inconsistent trace files.
	ErrBadTrace = errors.New("trace: invalid link trace")
)

// MaxTraceNodes bounds the node count a trace file may declare, so a
// corrupt or hostile header cannot force a quadratic allocation.
const MaxTraceNodes = 1024

// LinkTrace is a recorded per-link PRR matrix.
type LinkTrace struct {
	// Name labels the trace (testbed, date, survey id).
	Name string
	// Nodes is the node count.
	Nodes int
	// PRR[tx][rx] is the recorded reception ratio of the directed link
	// tx→rx, in [0, 1]. Unrecorded links are 0; the diagonal is always 0.
	PRR [][]float64
}

// jsonLink is one directed link in the JSON wire format.
type jsonLink struct {
	Tx  int     `json:"tx"`
	Rx  int     `json:"rx"`
	PRR float64 `json:"prr"`
}

// jsonTrace is the JSON wire format: links are listed sparsely.
type jsonTrace struct {
	Name  string     `json:"name,omitempty"`
	Nodes int        `json:"nodes"`
	Links []jsonLink `json:"links"`
}

// newMatrix validates the node count and allocates the PRR matrix.
func newMatrix(nodes int) ([][]float64, error) {
	if nodes < 2 || nodes > MaxTraceNodes {
		return nil, fmt.Errorf("%w: %d nodes (want 2..%d)", ErrBadTrace, nodes, MaxTraceNodes)
	}
	m := make([][]float64, nodes)
	for i := range m {
		m[i] = make([]float64, nodes)
	}
	return m, nil
}

// setLink validates and stores one directed link, rejecting duplicates.
func setLink(m [][]float64, seen [][]bool, tx, rx int, prr float64) error {
	n := len(m)
	if tx < 0 || tx >= n || rx < 0 || rx >= n {
		return fmt.Errorf("%w: link (%d,%d) with %d nodes", ErrBadTrace, tx, rx, n)
	}
	if tx == rx {
		return fmt.Errorf("%w: self link at node %d", ErrBadTrace, tx)
	}
	if math.IsNaN(prr) || prr < 0 || prr > 1 {
		return fmt.Errorf("%w: link (%d,%d) PRR %v outside [0,1]", ErrBadTrace, tx, rx, prr)
	}
	if seen[tx][rx] {
		return fmt.Errorf("%w: duplicate link (%d,%d)", ErrBadTrace, tx, rx)
	}
	seen[tx][rx] = true
	m[tx][rx] = prr
	return nil
}

// ParseCSV parses the CSV trace format:
//
//	# comments and blank lines are ignored
//	nodes,<N>          (required first record)
//	name,<label>       (optional)
//	tx,rx,prr          (optional header)
//	0,1,0.95           (one directed link per line)
//
// Links are directed; asymmetric testbeds record both directions. Every
// link must be in range, non-self, with PRR in [0, 1], and unique.
func ParseCSV(data []byte) (*LinkTrace, error) {
	var (
		tr   *LinkTrace
		seen [][]bool
	)
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if tr == nil {
			key, val, ok := strings.Cut(line, ",")
			if !ok || strings.TrimSpace(key) != "nodes" {
				return nil, fmt.Errorf("%w: line %d: expected nodes,<N> header, got %q",
					ErrBadTrace, lineNo+1, line)
			}
			nodes, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: node count: %v", ErrBadTrace, lineNo+1, err)
			}
			m, err := newMatrix(nodes)
			if err != nil {
				return nil, err
			}
			tr = &LinkTrace{Nodes: nodes, PRR: m}
			seen = make([][]bool, nodes)
			for i := range seen {
				seen[i] = make([]bool, nodes)
			}
			continue
		}
		if name, ok := strings.CutPrefix(line, "name,"); ok {
			// Canonicalize interior CR (a LF can't survive line splitting)
			// so parse output always round-trips through MarshalCSV.
			tr.Name = strings.TrimSpace(strings.ReplaceAll(name, "\r", " "))
			continue
		}
		if line == "tx,rx,prr" {
			continue // column header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: want tx,rx,prr, got %q", ErrBadTrace, lineNo+1, line)
		}
		tx, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: tx: %v", ErrBadTrace, lineNo+1, err)
		}
		rx, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: rx: %v", ErrBadTrace, lineNo+1, err)
		}
		prr, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: prr: %v", ErrBadTrace, lineNo+1, err)
		}
		if err := setLink(tr.PRR, seen, tx, rx, prr); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if tr == nil {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return tr, nil
}

// ParseJSON parses the JSON trace format:
//
//	{"name":"line5","nodes":5,"links":[{"tx":0,"rx":1,"prr":0.95},...]}
//
// Unknown fields are rejected; link validation matches ParseCSV.
func ParseJSON(data []byte) (*LinkTrace, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var wire jsonTrace
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	// A trace is a single document; trailing garbage is a corrupt file.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after trace document", ErrBadTrace)
	}
	m, err := newMatrix(wire.Nodes)
	if err != nil {
		return nil, err
	}
	tr := &LinkTrace{Name: wire.Name, Nodes: wire.Nodes, PRR: m}
	seen := make([][]bool, wire.Nodes)
	for i := range seen {
		seen[i] = make([]bool, wire.Nodes)
	}
	for _, l := range wire.Links {
		if err := setLink(tr.PRR, seen, l.Tx, l.Rx, l.PRR); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// MarshalCSV serializes the trace in the ParseCSV format: links with PRR > 0
// in row-major order, floats in shortest round-tripping notation, so
// parse → serialize → parse is stable.
func (t *LinkTrace) MarshalCSV() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes,%d\n", t.Nodes)
	if t.Name != "" {
		// Names can carry arbitrary characters when the trace came from JSON
		// or was hand-built; line breaks would inject records into the CSV.
		name := strings.NewReplacer("\n", " ", "\r", " ").Replace(t.Name)
		fmt.Fprintf(&b, "name,%s\n", name)
	}
	b.WriteString("tx,rx,prr\n")
	for tx := range t.PRR {
		for rx, prr := range t.PRR[tx] {
			if prr > 0 {
				fmt.Fprintf(&b, "%d,%d,%s\n", tx, rx, strconv.FormatFloat(prr, 'g', -1, 64))
			}
		}
	}
	return []byte(b.String())
}

// MarshalJSON serializes the trace in the ParseJSON wire format (sparse
// row-major link list), keeping parse → serialize → parse stable.
func (t *LinkTrace) MarshalJSON() ([]byte, error) {
	wire := jsonTrace{Name: t.Name, Nodes: t.Nodes, Links: []jsonLink{}}
	for tx := range t.PRR {
		for rx, prr := range t.PRR[tx] {
			if prr > 0 {
				wire.Links = append(wire.Links, jsonLink{Tx: tx, Rx: rx, PRR: prr})
			}
		}
	}
	return json.Marshal(wire)
}

// Load reads a trace file, dispatching on the extension (.csv or .json).
func Load(path string) (*LinkTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ParseCSV(data)
	case ".json":
		return ParseJSON(data)
	default:
		return nil, fmt.Errorf("%w: unsupported trace extension %q (want .csv or .json)",
			ErrBadTrace, ext)
	}
}

//go:embed traces
var bundledFS embed.FS

// Bundled returns one of the example traces shipped with the package, by
// base name (see BundledNames).
func Bundled(name string) (*LinkTrace, error) {
	for _, ext := range []string{".csv", ".json"} {
		data, err := bundledFS.ReadFile("traces/" + name + ext)
		if err != nil {
			continue
		}
		if ext == ".csv" {
			return ParseCSV(data)
		}
		return ParseJSON(data)
	}
	return nil, fmt.Errorf("%w: no bundled trace %q (have %v)", ErrBadTrace, name, BundledNames())
}

// BundledNames lists the example traces shipped with the package, sorted.
func BundledNames() []string {
	entries, err := bundledFS.ReadDir("traces")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		base := e.Name()
		names = append(names, strings.TrimSuffix(base, filepath.Ext(base)))
	}
	sort.Strings(names)
	return names
}
