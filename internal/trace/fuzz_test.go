package trace

import (
	"reflect"
	"testing"
)

// Fuzz harness for the trace parsers. The invariants under fuzzing:
//
//  1. no input may panic the parser — malformed traces error;
//  2. any input that parses must round-trip: parse → serialize → parse
//     yields a deeply equal trace (serialization is canonical and loses
//     nothing the parser keeps).
//
// CI runs these in seed-corpus mode (go test -run Fuzz), which replays the
// f.Add seeds below plus any crashers checked into testdata/fuzz as
// regression tests; local exploration uses go test -fuzz=FuzzParseCSV.

func FuzzParseCSV(f *testing.F) {
	f.Add([]byte(validCSV))
	f.Add([]byte("nodes,2\n0,1,1\n"))
	f.Add([]byte("nodes,2\nname,x\ntx,rx,prr\n1,0,0.25\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("nodes,1000000\n"))
	f.Add([]byte("nodes,3\n0,1,5e-1\n"))
	f.Add([]byte("nodes,3\n0,1,0.5\n0,1,0.5\n"))
	f.Add([]byte("nodes,-4\n"))
	f.Add([]byte(""))
	for _, name := range BundledNames() {
		if tr, err := Bundled(name); err == nil {
			f.Add(tr.MarshalCSV())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseCSV(data) // must never panic
		if err != nil {
			return
		}
		again, err := ParseCSV(tr.MarshalCSV())
		if err != nil {
			t.Fatalf("serialized form of a valid trace failed to parse: %v", err)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("round trip unstable:\nfirst:  %+v\nsecond: %+v", tr, again)
		}
	})
}

func FuzzParseJSON(f *testing.F) {
	f.Add([]byte(validJSON))
	f.Add([]byte(`{"nodes":2,"links":[]}`))
	f.Add([]byte(`{"nodes":2,"links":[{"tx":0,"rx":1,"prr":1}]}`))
	f.Add([]byte(`{"nodes":1e9,"links":[]}`))
	f.Add([]byte(`{"nodes":3,"links":[{"tx":0,"rx":1,"prr":1e-300}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	for _, name := range BundledNames() {
		if tr, err := Bundled(name); err == nil {
			if raw, err := tr.MarshalJSON(); err == nil {
				f.Add(raw)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseJSON(data) // must never panic
		if err != nil {
			return
		}
		raw, err := tr.MarshalJSON()
		if err != nil {
			t.Fatalf("serialize of a valid trace failed: %v", err)
		}
		again, err := ParseJSON(raw)
		if err != nil {
			t.Fatalf("serialized form of a valid trace failed to parse: %v", err)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("round trip unstable:\nfirst:  %+v\nsecond: %+v", tr, again)
		}
	})
}
