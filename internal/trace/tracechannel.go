package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"iotmpc/internal/phy"
)

// Channel is the trace-driven radio backend: it replays a recorded per-link
// PRR matrix (LinkTrace) instead of deriving reception from a propagation
// model. Reception draws are Bernoulli in the recorded per-link ratios;
// concurrent same-packet transmissions succeed with the union probability of
// the individual links (independent receptions — the trace records no
// constructive-interference structure). As with every backend, certain
// outcomes (PRR 0 or 1) consume no randomness.
type Channel struct {
	params phy.Params
	tr     *LinkTrace

	tableOnce sync.Once
	table     *phy.LinkTable
}

var _ phy.Radio = (*Channel)(nil)

// NewChannel wraps a link trace as a radio backend. params supplies the
// timing/energy figures (airtimes, slot guard, radio currents) the trace
// does not record.
func NewChannel(params phy.Params, tr *LinkTrace) (*Channel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Nodes < 2 || len(tr.PRR) != tr.Nodes {
		return nil, fmt.Errorf("%w: nil or inconsistent trace", ErrBadTrace)
	}
	// Hand-constructed traces (the parsers always build square matrices)
	// must also be square, or reception queries would panic mid-simulation.
	for i, row := range tr.PRR {
		if len(row) != tr.Nodes {
			return nil, fmt.Errorf("%w: PRR row %d has %d entries for %d nodes",
				ErrBadTrace, i, len(row), tr.Nodes)
		}
	}
	return &Channel{params: params, tr: tr}, nil
}

// Factory returns a phy.Factory replaying the trace. The positions only fix
// the expected node count — a trace carries no geometry — and a mismatch
// between deployment size and trace size is an error, not a truncation.
// The seed is ignored: the trace IS the frozen randomness.
func Factory(tr *LinkTrace) phy.Factory {
	return func(params phy.Params, positions []phy.Position, _ int64) (phy.Radio, error) {
		if tr != nil && len(positions) != tr.Nodes {
			return nil, fmt.Errorf("%w: trace %q has %d nodes, deployment has %d",
				ErrBadTrace, tr.Name, tr.Nodes, len(positions))
		}
		return NewChannel(params, tr)
	}
}

// Trace returns the replayed link trace.
func (c *Channel) Trace() *LinkTrace { return c.tr }

// NumNodes returns the number of nodes in the trace.
func (c *Channel) NumNodes() int { return c.tr.Nodes }

// Params returns the PHY parameterization of the backend.
func (c *Channel) Params() phy.Params { return c.params }

// PRR returns the recorded reception ratio of the directed link tx→rx.
func (c *Channel) PRR(tx, rx int) (float64, error) {
	if err := c.checkIndex(tx, rx); err != nil {
		return 0, err
	}
	if tx == rx {
		return 0, nil
	}
	return c.tr.PRR[tx][rx], nil
}

// MeanRSSI synthesizes a received power from the recorded PRR by inverting
// the log-distance model's RSSI→PRR sigmoid (clamped to ±6 widths around
// the midpoint). Informational only: reception replays the trace directly.
func (c *Channel) MeanRSSI(tx, rx int) (float64, error) {
	if err := c.checkIndex(tx, rx); err != nil {
		return 0, err
	}
	if tx == rx {
		return math.Inf(-1), nil
	}
	p := c.tr.PRR[tx][rx]
	if p <= 0 {
		return c.params.SensitivityDBm - 1, nil // below the reception floor
	}
	const clampWidths = 6.0
	logit := math.Log(p / (1 - p))
	if p >= 1 || logit > clampWidths {
		logit = clampWidths
	} else if logit < -clampWidths {
		logit = -clampWidths
	}
	return c.params.PRRMidpointDBm + c.params.PRRWidthDB*logit, nil
}

// ReceiveSingle draws one reception attempt for a lone transmission tx→rx.
func (c *Channel) ReceiveSingle(tx, rx int, rng *rand.Rand) (bool, error) {
	if err := c.checkIndex(tx, rx); err != nil {
		return false, err
	}
	if tx == rx {
		return false, nil
	}
	return phy.Draw(c.tr.PRR[tx][rx], rng), nil
}

// ReceiveConcurrent draws one reception attempt at rx for synchronized
// same-packet transmitters: the union probability 1 − Π(1 − PRRᵢ) of the
// individual recorded links.
func (c *Channel) ReceiveConcurrent(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	return c.receiveUnion(rx, transmitters, rng)
}

// ReceiveConcurrentFast is identical to ReceiveConcurrent: replay has no
// per-transmitter fading to shortcut.
func (c *Channel) ReceiveConcurrentFast(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	return c.receiveUnion(rx, transmitters, rng)
}

func (c *Channel) receiveUnion(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	if len(transmitters) == 0 {
		return false, nil
	}
	miss := 1.0
	for _, tx := range transmitters {
		if err := c.checkIndex(tx, rx); err != nil {
			return false, err
		}
		if tx == rx {
			return false, nil // a transmitting node cannot receive in the same slot
		}
		miss *= 1 - c.tr.PRR[tx][rx]
	}
	return phy.Draw(1-miss, rng), nil
}

// LinkTable returns the flat snapshot of the recorded PRR matrix, whose
// concurrent receptions draw on the union probability of independent links
// — exactly this backend's semantics. Built lazily once.
func (c *Channel) LinkTable() *phy.LinkTable {
	c.tableOnce.Do(func() { c.table = phy.UnionPRRTable(c.tr.PRR) })
	return c.table
}

// ReceiveCapture draws a collision of different packets: the best recorded
// link is captured iff it arrives AND no other transmitter's packet does
// (probability PRR_best × Π_others(1 − PRRᵢ)); a single draw decides.
func (c *Channel) ReceiveCapture(rx int, transmitters []int, rng *rand.Rand) (int, error) {
	if len(transmitters) == 0 {
		return -1, nil
	}
	bestIdx, best := -1, 0.0
	for i, tx := range transmitters {
		if err := c.checkIndex(tx, rx); err != nil {
			return -1, err
		}
		if tx == rx {
			return -1, nil
		}
		if p := c.tr.PRR[tx][rx]; p > best {
			best, bestIdx = p, i
		}
	}
	if bestIdx < 0 {
		return -1, nil
	}
	pCapture := best
	for i, tx := range transmitters {
		if i != bestIdx {
			pCapture *= 1 - c.tr.PRR[tx][rx]
		}
	}
	if phy.Draw(pCapture, rng) {
		return bestIdx, nil
	}
	return -1, nil
}

func (c *Channel) checkIndex(a, b int) error {
	n := c.tr.Nodes
	if a < 0 || a >= n || b < 0 || b >= n {
		return fmt.Errorf("%w: (%d,%d) with %d nodes", phy.ErrNodeIndex, a, b, n)
	}
	return nil
}
