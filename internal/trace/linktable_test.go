package trace

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
)

// TestLinkTableMatchesTraceChannel pins the third backend's table to its
// Radio methods: identical PRRs, identical union-probability draws on
// identical RNG streams (the union product folds links in transmitter-list
// order, so even the floating-point rounding must agree), and certain
// links consuming no randomness.
func TestLinkTableMatchesTraceChannel(t *testing.T) {
	tr, err := Bundled("testbed10")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(phy.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	n := ch.NumNodes()
	table := ch.LinkTable()
	if table.NumNodes() != n {
		t.Fatalf("table has %d nodes, trace %d", table.NumNodes(), n)
	}
	if ch.LinkTable() != table {
		t.Fatal("LinkTable not cached: second call returned a different snapshot")
	}
	for tx := 0; tx < n; tx++ {
		for rx := 0; rx < n; rx++ {
			want, err := ch.PRR(tx, rx)
			if err != nil {
				t.Fatal(err)
			}
			if got := table.PRR(tx, rx); got != want {
				t.Fatalf("PRR(%d,%d): table %v, trace %v", tx, rx, got, want)
			}
		}
	}
	for _, threshold := range []float64{0.3, 0.5, 0.9} {
		want, err := phy.HopDistances(ch, 0, threshold)
		if err != nil {
			t.Fatal(err)
		}
		got := table.HopDistances(0, threshold)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("HopDistances(th=%.1f)[%d]: table %d, trace %d", threshold, i, got[i], want[i])
			}
		}
	}

	direct := rand.New(rand.NewSource(11))
	tabled := rand.New(rand.NewSource(11))
	pick := rand.New(rand.NewSource(3))
	set := make([]int, 0, n)
	for trial := 0; trial < 4000; trial++ {
		rx := pick.Intn(n)
		set = set[:0]
		for node := 0; node < n; node++ {
			if pick.Intn(n) < 3 {
				set = append(set, node)
			}
		}
		want, err := ch.ReceiveConcurrentFast(rx, set, direct)
		if err != nil {
			t.Fatal(err)
		}
		if got := table.ReceiveConcurrentFast(rx, set, tabled); got != want {
			t.Fatalf("trial %d: rx=%d txers=%v: table %v, trace %v", trial, rx, set, got, want)
		}
	}
	if direct.Int63() != tabled.Int63() {
		t.Fatal("RNG streams diverged: the table consumed different randomness than the trace replay")
	}
}
