package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(time.Second, KindPhase, -1, "x") // must not panic
	if r.Len() != 0 {
		t.Error("nil recorder has events")
	}
	if got := r.Events(); got != nil {
		t.Error("nil recorder returned events")
	}
	b, err := r.JSON()
	if err != nil || string(b) != "[]" {
		t.Errorf("nil JSON = %s, %v", b, err)
	}
	if len(r.CountByKind()) != 0 {
		t.Error("nil recorder counted kinds")
	}
}

func TestRecordAndQuery(t *testing.T) {
	var r Recorder
	r.Record(time.Millisecond, KindShareGen, 3, "26 destinations")
	r.Record(2*time.Millisecond, KindPhase, -1, "sharing")
	r.Record(3*time.Millisecond, KindAggregateOK, 5, "")
	r.Record(3*time.Millisecond, KindAggregateOK, 6, "")

	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	counts := r.CountByKind()
	if counts[KindAggregateOK] != 2 || counts[KindPhase] != 1 {
		t.Errorf("counts = %v", counts)
	}
	events := r.Events()
	if events[0].Node != 3 || events[0].Kind != KindShareGen {
		t.Errorf("first event = %+v", events[0])
	}
	// Returned slice is a copy.
	events[0].Node = 99
	if r.Events()[0].Node == 99 {
		t.Error("Events aliases internal storage")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	var r Recorder
	r.Record(time.Second, KindSumComplete, 7, "")
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Node != 7 || decoded[0].Kind != KindSumComplete {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestSummary(t *testing.T) {
	var r Recorder
	r.Record(0, KindAggregateOK, 1, "")
	r.Record(0, KindAggregateFail, 2, "")
	s := r.Summary()
	if !strings.Contains(s, "2 events") ||
		!strings.Contains(s, "aggregate-ok=1") ||
		!strings.Contains(s, "aggregate-fail=1") {
		t.Errorf("Summary = %q", s)
	}
}
