package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(0) … fn(n-1) across a pool of worker goroutines and
// waits for all of them. workers <= 0 selects GOMAXPROCS; workers = 1 is
// plain sequential execution (useful for determinism baselines and
// debugging). The first failure stops the dispatch of not-yet-started
// indices (in-flight iterations finish), so a sweep that dies at scenario 0
// does not burn hours computing the rest. The error returned is the one
// from the lowest failing index that ran; because indices are dispatched in
// increasing order, that is always the lowest failing index overall, so the
// reported failure does not depend on goroutine scheduling.
//
// ParallelFor imposes no ordering between iterations — callers get
// determinism by making each iteration self-contained (own RNG streams, own
// engine/ledger, results written to a caller-owned slot at its index), which
// is exactly how the scenario runner uses it.
func ParallelFor(n, workers int, fn func(i int) error) error {
	if n < 0 {
		return fmt.Errorf("sim: negative iteration count %d", n)
	}
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	indices := make(chan int)
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
