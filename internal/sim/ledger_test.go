package sim

import (
	"errors"
	"testing"
	"time"
)

func TestLedgerAccumulatesByState(t *testing.T) {
	l := NewRadioLedger(2)
	mustSet := func(node int, s RadioState, at time.Duration) {
		t.Helper()
		if err := l.SetState(node, s, at); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, RadioRx, 0)
	mustSet(0, RadioTx, 10*time.Millisecond)
	mustSet(0, RadioOff, 15*time.Millisecond)
	if err := l.CloseAt(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	if got := l.RxTime(0); got != 10*time.Millisecond {
		t.Errorf("RxTime = %v, want 10ms", got)
	}
	if got := l.TxTime(0); got != 5*time.Millisecond {
		t.Errorf("TxTime = %v, want 5ms", got)
	}
	if got := l.OnTime(0); got != 15*time.Millisecond {
		t.Errorf("OnTime = %v, want 15ms", got)
	}
	if got := l.OnTime(1); got != 0 {
		t.Errorf("idle node OnTime = %v, want 0", got)
	}
}

func TestLedgerAggregates(t *testing.T) {
	l := NewRadioLedger(3)
	if err := l.AddBulk(0, 10*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.AddBulk(1, 0, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := l.TotalOnTime(); got != 30*time.Millisecond {
		t.Errorf("TotalOnTime = %v, want 30ms", got)
	}
	if got := l.MeanOnTime(); got != 10*time.Millisecond {
		t.Errorf("MeanOnTime = %v, want 10ms", got)
	}
	if got := l.MaxOnTime(); got != 20*time.Millisecond {
		t.Errorf("MaxOnTime = %v, want 20ms", got)
	}
}

func TestLedgerErrors(t *testing.T) {
	l := NewRadioLedger(1)
	if err := l.SetState(5, RadioRx, 0); !errors.Is(err, ErrLedgerNode) {
		t.Errorf("bad node: %v, want ErrLedgerNode", err)
	}
	if err := l.SetState(0, RadioRx, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.SetState(0, RadioOff, time.Millisecond); !errors.Is(err, ErrLedgerTime) {
		t.Errorf("backwards: %v, want ErrLedgerTime", err)
	}
	if err := l.AddBulk(3, 0, 0); !errors.Is(err, ErrLedgerNode) {
		t.Errorf("AddBulk bad node: %v, want ErrLedgerNode", err)
	}
	if err := l.AddBulk(0, -time.Millisecond, 0); !errors.Is(err, ErrLedgerTime) {
		t.Errorf("AddBulk negative: %v, want ErrLedgerTime", err)
	}
}

func TestLedgerMeanEmpty(t *testing.T) {
	l := NewRadioLedger(0)
	if got := l.MeanOnTime(); got != 0 {
		t.Errorf("MeanOnTime on empty = %v", got)
	}
}

func TestRadioStateString(t *testing.T) {
	tests := []struct {
		s    RadioState
		want string
	}{
		{RadioOff, "off"},
		{RadioRx, "rx"},
		{RadioTx, "tx"},
		{RadioState(99), "RadioState(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[int64]uint64)
	for stream := uint64(0); stream < 1000; stream++ {
		s := DeriveSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide", prev, stream)
		}
		seen[s] = stream
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(1, 2) != DeriveSeed(1, 2) {
		t.Error("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2) == DeriveSeed(2, 2) {
		t.Error("different roots collide")
	}
}

func TestNewRNGStreamsDiffer(t *testing.T) {
	a := NewRNG(7, 0)
	b := NewRNG(7, 1)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct streams produced identical sequences")
	}
}
