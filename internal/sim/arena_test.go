package sim

import (
	"testing"
	"time"
)

func TestArenaBorrowsAreZeroedAndSized(t *testing.T) {
	var a Arena
	xs := a.Ints(5)
	for i := range xs {
		xs[i] = i + 1
	}
	bs := a.Bools(3)
	bs[0] = true
	ds := a.Durations(2)
	ds[1] = time.Second
	us := a.Uint64s(4)
	us[0] = ^uint64(0)
	rows := a.BoolRows(2)
	rows[0] = bs

	a.Reset()
	// Same capacities come back, zeroed, regardless of the garbage left in
	// them by the previous borrower.
	xs2 := a.Ints(5)
	if len(xs2) != 5 {
		t.Fatalf("len %d, want 5", len(xs2))
	}
	for i, v := range xs2 {
		if v != 0 {
			t.Fatalf("reused int slice not zeroed at %d: %d", i, v)
		}
	}
	for _, b := range a.Bools(3) {
		if b {
			t.Fatal("reused bool slice not zeroed")
		}
	}
	for _, d := range a.Durations(2) {
		if d != 0 {
			t.Fatal("reused duration slice not zeroed")
		}
	}
	for _, u := range a.Uint64s(4) {
		if u != 0 {
			t.Fatal("reused uint64 lane slice not zeroed")
		}
	}
	for _, r := range a.BoolRows(2) {
		if r != nil {
			t.Fatal("reused row slice not nil-filled")
		}
	}
}

func TestArenaReusesBuffersAcrossResets(t *testing.T) {
	var a Arena
	first := a.Ints(64)
	a.Reset()
	second := a.Ints(64)
	if &first[0] != &second[0] {
		t.Fatal("reset did not recycle the buffer")
	}
	// A larger request after warm-up allocates fresh rather than aliasing.
	third := a.Ints(128)
	if len(third) != 128 {
		t.Fatalf("len %d, want 128", len(third))
	}
	// Distinct borrows between resets never alias.
	fourth := a.Ints(64)
	if &fourth[0] == &second[0] {
		t.Fatal("outstanding borrows alias each other")
	}
}

func TestArenaWarmBorrowsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	var a Arena
	warm := func() {
		a.Reset()
		_ = a.Ints(40)
		_ = a.Bools(40)
		_ = a.Durations(40)
		_ = a.Int32s(40)
		_ = a.Uint64s(40)
		_ = a.IntRows(8)
		_ = a.BoolRows(8)
		_ = a.DurationRows(8)
		_ = a.Int32Rows(8)
	}
	warm()
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Fatalf("warm arena borrows allocate %.1f objects per run, want 0", allocs)
	}
}
