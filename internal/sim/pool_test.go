package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var visited [n]atomic.Int32
		err := ParallelFor(n, workers, func(i int) error {
			visited[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visited {
			if got := visited[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForEmptyAndNegative(t *testing.T) {
	if err := ParallelFor(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ParallelFor(-1, 4, func(int) error { return nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestParallelForReportsLowestFailingIndex(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ParallelFor(50, 8, func(i int) error {
		calls.Add(1)
		if i == 7 || i == 33 {
			return fmt.Errorf("index %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	// Deterministic error selection: always the lowest failing index, even
	// though dispatch stops early and which higher indices ran depends on
	// scheduling. In-order dispatch guarantees the lowest failure executed.
	if got := err.Error(); got != "index 7: boom" {
		t.Fatalf("got error %q, want the lowest failing index", got)
	}
	if got := calls.Load(); got < 8 || got > 50 {
		t.Fatalf("ran %d iterations, want between 8 and 50", got)
	}
}

func TestParallelForStopsDispatchAfterFailure(t *testing.T) {
	// Sequential execution makes the abort point exact: index 3 fails, so
	// indices 4+ must never start.
	var calls atomic.Int32
	err := ParallelFor(1000, 1, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// One extra dispatch may already be parked in the channel buffer; allow
	// a small overshoot but not a full sweep.
	if got := calls.Load(); got < 4 || got > 6 {
		t.Fatalf("ran %d iterations, want ~4", got)
	}
}
