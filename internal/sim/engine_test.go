package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	if err := e.Schedule(30*time.Millisecond, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10*time.Millisecond, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(20*time.Millisecond, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := e.Schedule(time.Millisecond, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	err := e.Schedule(time.Millisecond, func() {
		fired = append(fired, e.Now())
		if err := e.ScheduleAfter(2*time.Millisecond, func() {
			fired = append(fired, e.Now())
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	if err := e.AdvanceTo(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(time.Millisecond, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("error = %v, want ErrPastEvent", err)
	}
	if err := e.ScheduleAfter(-time.Millisecond, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("negative delay: %v, want ErrPastEvent", err)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	if err := e.AdvanceTo(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5*time.Millisecond {
		t.Errorf("Now = %v", e.Now())
	}
	if err := e.AdvanceTo(time.Millisecond); !errors.Is(err, ErrClockBackward) {
		t.Errorf("backward: %v, want ErrClockBackward", err)
	}
	if err := e.Advance(-time.Millisecond); !errors.Is(err, ErrClockBackward) {
		t.Errorf("negative advance: %v, want ErrClockBackward", err)
	}
}

func TestAdvanceToCannotSkipEvents(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(time.Millisecond, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(2 * time.Millisecond); err == nil {
		t.Error("AdvanceTo skipped a pending event without error")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired int
	for _, at := range []time.Duration{1, 2, 3, 4} {
		if err := e.Schedule(at*time.Millisecond, func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunUntil(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Now() != 2*time.Millisecond {
		t.Errorf("Now = %v, want 2ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}
