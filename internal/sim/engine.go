// Package sim provides the discrete-event simulation substrate: a virtual
// clock with an event heap, deterministic RNG streams, and per-node radio
// state/on-time accounting. The CT protocols are slot-synchronous, so they
// mostly advance the clock in fixed steps (AdvanceTo) and use scheduled
// events for phase orchestration; the ledger converts radio state changes
// into the radio-on-time metric the paper reports.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Errors returned by the engine.
var (
	// ErrPastEvent is returned when scheduling before the current time.
	ErrPastEvent = errors.New("sim: event scheduled in the past")
	// ErrClockBackward is returned when the clock would move backward.
	ErrClockBackward = errors.New("sim: clock cannot move backward")
)

// Engine is a single-threaded discrete-event executor over a virtual clock.
// Virtual time is a time.Duration offset from the simulation epoch.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
}

type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among same-time events, keeps runs deterministic
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return // heap.Push is only ever called with *event internally
	}
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// NewEngine creates an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule enqueues fn at absolute virtual time at.
func (e *Engine) Schedule(at time.Duration, fn func()) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	ev := &event{at: at, seq: e.nextID, fn: fn}
	e.nextID++
	heap.Push(&e.queue, ev)
	return nil
}

// ScheduleAfter enqueues fn after delay d from now.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("%w: delay %v", ErrPastEvent, d)
	}
	return e.Schedule(e.now+d, fn)
}

// AdvanceTo moves the clock forward without executing events; used by
// slot-synchronous protocol code that processes a whole TDMA slot inline.
// It is an error to skip over pending events.
func (e *Engine) AdvanceTo(t time.Duration) error {
	if t < e.now {
		return fmt.Errorf("%w: to=%v now=%v", ErrClockBackward, t, e.now)
	}
	if len(e.queue) > 0 && e.queue[0].at < t {
		return fmt.Errorf("sim: AdvanceTo(%v) would skip event at %v", t, e.queue[0].at)
	}
	e.now = t
	return nil
}

// Advance moves the clock forward by d; see AdvanceTo.
func (e *Engine) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("%w: advance %v", ErrClockBackward, d)
	}
	return e.AdvanceTo(e.now + d)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&e.queue).(*event)
	if !ok {
		return false
	}
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline.
func (e *Engine) RunUntil(deadline time.Duration) error {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	return e.AdvanceTo(deadline)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
