package sim

import "math/rand"

// RNG stream derivation. Experiments need many independent, reproducible
// randomness streams (one per trial, per protocol phase, per purpose) all
// rooted in a single user-supplied seed. DeriveSeed mixes a root seed with a
// stream label using the SplitMix64 finalizer, whose avalanche behavior keeps
// nearby labels uncorrelated.

// DeriveSeed returns a child seed for the given stream label.
func DeriveSeed(root int64, stream uint64) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z = z ^ (z >> 31)
	return int64(z)
}

// NewRNG returns a rand.Rand for the given root seed and stream label.
func NewRNG(root int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(root, stream)))
}
