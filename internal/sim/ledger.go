package sim

import (
	"errors"
	"fmt"
	"time"
)

// RadioState enumerates the radio of one node. States start at one so the
// zero value is distinguishable from "explicitly off".
type RadioState int

// Radio states.
const (
	// RadioOff — radio powered down, no energy draw.
	RadioOff RadioState = iota + 1
	// RadioRx — listening or receiving.
	RadioRx
	// RadioTx — transmitting.
	RadioTx
)

// String implements fmt.Stringer.
func (s RadioState) String() string {
	switch s {
	case RadioOff:
		return "off"
	case RadioRx:
		return "rx"
	case RadioTx:
		return "tx"
	default:
		return fmt.Sprintf("RadioState(%d)", int(s))
	}
}

// Errors returned by the ledger.
var (
	// ErrLedgerNode is returned for out-of-range node indices.
	ErrLedgerNode = errors.New("sim: ledger node out of range")
	// ErrLedgerTime is returned when a state change is reported out of order.
	ErrLedgerTime = errors.New("sim: ledger time out of order")
)

// RadioLedger accumulates per-node radio-on time, split into rx and tx, from
// a stream of (node, state, timestamp) transitions. This is the source of the
// paper's "Radio-on time" metric.
type RadioLedger struct {
	state []RadioState
	since []time.Duration
	tx    []time.Duration
	rx    []time.Duration
}

// NewRadioLedger creates a ledger for n nodes, all radios off at time zero.
func NewRadioLedger(n int) *RadioLedger {
	l := &RadioLedger{
		state: make([]RadioState, n),
		since: make([]time.Duration, n),
		tx:    make([]time.Duration, n),
		rx:    make([]time.Duration, n),
	}
	for i := range l.state {
		l.state[i] = RadioOff
	}
	return l
}

// NumNodes returns the ledger width.
func (l *RadioLedger) NumNodes() int { return len(l.state) }

// SetState records that node's radio entered state at virtual time now.
// Time must be monotone per node.
func (l *RadioLedger) SetState(node int, state RadioState, now time.Duration) error {
	if node < 0 || node >= len(l.state) {
		return fmt.Errorf("%w: %d", ErrLedgerNode, node)
	}
	if now < l.since[node] {
		return fmt.Errorf("%w: node %d at %v, last %v", ErrLedgerTime, node, now, l.since[node])
	}
	l.accumulate(node, now)
	l.state[node] = state
	return nil
}

// CloseAt finalizes accounting at the end of a simulation: every radio is
// considered off from now on.
func (l *RadioLedger) CloseAt(now time.Duration) error {
	for i := range l.state {
		if err := l.SetState(i, RadioOff, now); err != nil {
			return err
		}
	}
	return nil
}

func (l *RadioLedger) accumulate(node int, now time.Duration) {
	elapsed := now - l.since[node]
	switch l.state[node] {
	case RadioRx:
		l.rx[node] += elapsed
	case RadioTx:
		l.tx[node] += elapsed
	case RadioOff:
		// no draw
	}
	l.since[node] = now
}

// TxTime returns accumulated transmit time for node.
func (l *RadioLedger) TxTime(node int) time.Duration { return l.tx[node] }

// RxTime returns accumulated receive/listen time for node.
func (l *RadioLedger) RxTime(node int) time.Duration { return l.rx[node] }

// OnTime returns total radio-on time (tx+rx) for node.
func (l *RadioLedger) OnTime(node int) time.Duration { return l.tx[node] + l.rx[node] }

// TotalOnTime sums radio-on time over all nodes.
func (l *RadioLedger) TotalOnTime() time.Duration {
	var total time.Duration
	for i := range l.state {
		total += l.OnTime(i)
	}
	return total
}

// MeanOnTime returns the per-node average radio-on time.
func (l *RadioLedger) MeanOnTime() time.Duration {
	if len(l.state) == 0 {
		return 0
	}
	return l.TotalOnTime() / time.Duration(len(l.state))
}

// MaxOnTime returns the largest per-node radio-on time (the bottleneck node
// that determines network lifetime).
func (l *RadioLedger) MaxOnTime() time.Duration {
	var m time.Duration
	for i := range l.state {
		if on := l.OnTime(i); on > m {
			m = on
		}
	}
	return m
}

// AddBulk credits node with tx and rx time directly. Slot-synchronous
// protocol code that processes an entire TDMA slot at once uses this instead
// of issuing two SetState transitions per sub-slot, which would dominate
// runtime at n² sub-slots per chain.
func (l *RadioLedger) AddBulk(node int, tx, rx time.Duration) error {
	if node < 0 || node >= len(l.state) {
		return fmt.Errorf("%w: %d", ErrLedgerNode, node)
	}
	if tx < 0 || rx < 0 {
		return fmt.Errorf("%w: negative bulk credit", ErrLedgerTime)
	}
	l.tx[node] += tx
	l.rx[node] += rx
	return nil
}
