package sim

import "time"

// Arena recycles the scratch and result buffers of the simulation hot
// path. Every scenario cell bottoms out in thousands of floods and chain
// phases, and each of those historically paid a dozen fresh slice
// allocations; an Arena lets the protocol kernels borrow buffers instead,
// so a warm flood runs with zero heap allocations (asserted by
// testing.AllocsPerRun in internal/glossy).
//
// Usage contract:
//
//   - Borrow with the typed getters (Ints, Bools, ...). Returned slices
//     have exactly the requested length and are zeroed, like make().
//   - Reset returns every outstanding borrow to the free list at once;
//     all slices borrowed since the previous Reset — including any
//     result structures built on them — are invalidated.
//   - An Arena is single-goroutine state. Concurrent trial workers each
//     own one (core pools them); a zero Arena is ready to use.
//
// After warm-up the free lists hold one buffer per borrow site at the
// high-water capacity, so a steady-state borrow is a pop + memclr.
type Arena struct {
	ints     slicePool[int]
	int32s   slicePool[int32]
	uint64s  slicePool[uint64]
	bools    slicePool[bool]
	durs     slicePool[time.Duration]
	intRows  slicePool[[]int]
	boolRows slicePool[[]bool]
	durRows  slicePool[[]time.Duration]
	i32Rows  slicePool[[]int32]
}

// Every getter accepts a nil receiver and falls back to a plain make():
// the protocol kernels take an optional *Arena, and nil-safety here keeps
// their arena and heap paths one code path instead of duplicated branches.

// Ints borrows a zeroed []int of length n.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.get(n)
}

// Int32s borrows a zeroed []int32 of length n.
func (a *Arena) Int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.int32s.get(n)
}

// Uint64s borrows a zeroed []uint64 of length n (the lane masks of the
// bit-sliced trial kernels).
func (a *Arena) Uint64s(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.uint64s.get(n)
}

// Bools borrows a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bools.get(n)
}

// Durations borrows a zeroed []time.Duration of length n.
func (a *Arena) Durations(n int) []time.Duration {
	if a == nil {
		return make([]time.Duration, n)
	}
	return a.durs.get(n)
}

// IntRows borrows a nil-filled [][]int of length n (row headers only; the
// rows themselves are borrowed separately).
func (a *Arena) IntRows(n int) [][]int {
	if a == nil {
		return make([][]int, n)
	}
	return a.intRows.get(n)
}

// BoolRows borrows a nil-filled [][]bool of length n.
func (a *Arena) BoolRows(n int) [][]bool {
	if a == nil {
		return make([][]bool, n)
	}
	return a.boolRows.get(n)
}

// DurationRows borrows a nil-filled [][]time.Duration of length n.
func (a *Arena) DurationRows(n int) [][]time.Duration {
	if a == nil {
		return make([][]time.Duration, n)
	}
	return a.durRows.get(n)
}

// Int32Rows borrows a nil-filled [][]int32 of length n.
func (a *Arena) Int32Rows(n int) [][]int32 {
	if a == nil {
		return make([][]int32, n)
	}
	return a.i32Rows.get(n)
}

// Reset returns every outstanding borrow to the arena, invalidating all
// slices handed out since the previous Reset. Reset on a nil Arena is a
// no-op.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.ints.reset()
	a.int32s.reset()
	a.uint64s.reset()
	a.bools.reset()
	a.durs.reset()
	a.intRows.reset()
	a.boolRows.reset()
	a.durRows.reset()
	a.i32Rows.reset()
}

// slicePool recycles slices of one element type between Resets.
type slicePool[T any] struct {
	free [][]T
	used [][]T
}

func (p *slicePool[T]) get(n int) []T {
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			s := p.free[i][:n]
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free = p.free[:last]
			clear(s)
			p.used = append(p.used, s)
			return s
		}
	}
	s := make([]T, n)
	p.used = append(p.used, s)
	return s
}

func (p *slicePool[T]) reset() {
	for _, s := range p.used {
		p.free = append(p.free, s[:cap(s)])
	}
	p.used = p.used[:0]
}
