package shamir

import (
	"fmt"
	"io"

	"iotmpc/internal/field"
)

// Proactive share refresh (Herzberg et al., CRYPTO 1995), the standard
// hardening for long-lived SSS deployments like periodic IoT metering: the
// collusion threshold k holds per *epoch* rather than per deployment. Every
// epoch, each node deals a fresh degree-k polynomial with constant term ZERO;
// holders add the refresh shares they receive to their standing share. The
// hidden secret is unchanged (zero was added), but the share set is
// re-randomized, so shares an adversary collected in different epochs cannot
// be combined.
//
// The dataflow is exactly the protocol's sharing phase with zero secrets, so
// it rides the same MiniCast chain; this file provides the algebra.

// ZeroShares deals one epoch's refresh contribution: shares of the zero
// secret under a fresh random degree-k polynomial.
func ZeroShares(degree int, points []field.Element, rng io.Reader) ([]Share, error) {
	shares, err := Split(field.Zero, degree, points, rng)
	if err != nil {
		return nil, fmt.Errorf("refresh deal: %w", err)
	}
	return shares, nil
}

// ApplyRefresh folds the refresh shares received this epoch into a standing
// share. Every refresh share must be bound to the standing share's public
// point.
func ApplyRefresh(standing Share, refresh []Share) (Share, error) {
	out := standing
	for _, r := range refresh {
		if r.X != standing.X {
			return Share{}, fmt.Errorf("%w: refresh at %v for share at %v",
				ErrMixedPoints, r.X, standing.X)
		}
		out.Value = out.Value.Add(r.Value)
	}
	return out, nil
}

// RefreshEpoch runs one full refresh among the holders of a share set:
// every holder deals zero-shares and every holder folds in what it received.
// shares[i] must all be bound to distinct public points (one per holder);
// the returned slice is position-aligned with the input. This is the
// loopback (transport-free) form used by tests and by deployments that
// refresh over a trusted local bus; over the air, internal/core moves the
// same zero-shares through the MiniCast sharing chain.
func RefreshEpoch(shares []Share, degree int, rng io.Reader) ([]Share, error) {
	n := len(shares)
	if n == 0 {
		return nil, fmt.Errorf("%w: no shares to refresh", ErrBadParams)
	}
	if degree+1 > n {
		return nil, fmt.Errorf("%w: degree %d with %d holders", ErrBadParams, degree, n)
	}
	points := make([]field.Element, n)
	seen := make(map[field.Element]struct{}, n)
	for i, s := range shares {
		if _, dup := seen[s.X]; dup {
			return nil, fmt.Errorf("%w: duplicate point %v", ErrBadParams, s.X)
		}
		seen[s.X] = struct{}{}
		points[i] = s.X
	}

	// incoming[i] collects the refresh shares destined for holder i.
	incoming := make([][]Share, n)
	for dealer := 0; dealer < n; dealer++ {
		deal, err := ZeroShares(degree, points, rng)
		if err != nil {
			return nil, err
		}
		for i := range deal {
			incoming[i] = append(incoming[i], deal[i])
		}
	}
	out := make([]Share, n)
	for i := range shares {
		refreshed, err := ApplyRefresh(shares[i], incoming[i])
		if err != nil {
			return nil, err
		}
		out[i] = refreshed
	}
	return out, nil
}
