package shamir

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randomSecrets(rng *rand.Rand, m int) []field.Element {
	out := make([]field.Element, m)
	for i := range out {
		out[i] = field.New(rng.Uint64())
	}
	return out
}

func TestSplitVecReconstructVecRoundtrip(t *testing.T) {
	rng := testRNG(31)
	points := PublicPoints(9)
	for _, m := range []int{1, 3, 16} {
		secrets := randomSecrets(rng, m)
		vecs, err := SplitVec(secrets, 4, points, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(vecs) != len(points) {
			t.Fatalf("m=%d: got %d share vectors, want %d", m, len(vecs), len(points))
		}
		got, err := ReconstructVec(vecs, 4)
		if err != nil {
			t.Fatal(err)
		}
		for k := range secrets {
			if got[k] != secrets[k] {
				t.Fatalf("m=%d: secret[%d] = %v, want %v", m, k, got[k], secrets[k])
			}
		}
		// Any other threshold-sized subset reconstructs too.
		subset := []ShareVector{vecs[8], vecs[2], vecs[5], vecs[0], vecs[6]}
		got, err = ReconstructVec(subset, 4)
		if err != nil {
			t.Fatal(err)
		}
		for k := range secrets {
			if got[k] != secrets[k] {
				t.Fatalf("m=%d subset: secret[%d] = %v, want %v", m, k, got[k], secrets[k])
			}
		}
	}
}

func TestSplitVecMatchesScalarSemantics(t *testing.T) {
	// A width-1 vector sharing must behave exactly like a scalar sharing:
	// same threshold, same privacy structure, reconstruct to the secret.
	rng := testRNG(32)
	points := PublicPoints(5)
	secret := field.New(424242)
	vecs, err := SplitVec([]field.Element{secret}, 2, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([]Share, len(vecs))
	for i, v := range vecs {
		shares[i] = Share{X: v.X, Value: v.Values[0]}
	}
	got, err := Reconstruct(shares, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("got %v, want %v", got, secret)
	}
}

func TestSplitVecEmptySecrets(t *testing.T) {
	rng := testRNG(33)
	points := PublicPoints(4)
	vecs, err := SplitVec(nil, 2, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructVec(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty sharing reconstructed %v", got)
	}
}

func TestSplitVecErrors(t *testing.T) {
	rng := testRNG(34)
	points := PublicPoints(4)
	if _, err := SplitVec(randomSecrets(rng, 2), -1, points, rng); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative degree: %v", err)
	}
	if _, err := SplitVec(randomSecrets(rng, 2), 4, points, rng); !errors.Is(err, ErrBadParams) {
		t.Fatalf("too few points: %v", err)
	}
	zeroPoint := []field.Element{field.New(1), field.Zero, field.New(3)}
	if _, err := SplitVec(randomSecrets(rng, 2), 1, zeroPoint, rng); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero public point: %v", err)
	}
}

func TestReconstructVecErrors(t *testing.T) {
	rng := testRNG(35)
	points := PublicPoints(6)
	vecs, err := SplitVec(randomSecrets(rng, 3), 3, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructVec(vecs[:3], 3); !errors.Is(err, ErrThreshold) {
		t.Fatalf("too few share vectors: %v", err)
	}
	ragged := []ShareVector{vecs[0], vecs[1], vecs[2], {X: vecs[3].X, Values: vecs[3].Values[:2]}}
	if _, err := ReconstructVec(ragged, 3); !errors.Is(err, ErrBadParams) {
		t.Fatalf("ragged widths: %v", err)
	}
}

func TestAggregateShareVectorsHomomorphism(t *testing.T) {
	// Element-wise sums of share vectors are share vectors of the element-wise
	// sum of secrets — the property local aggregation rides on.
	rng := testRNG(36)
	points := PublicPoints(7)
	const parties, width, degree = 4, 5, 2

	allSecrets := make([][]field.Element, parties)
	perPoint := make([][]ShareVector, len(points))
	for p := 0; p < parties; p++ {
		allSecrets[p] = randomSecrets(rng, width)
		vecs, err := SplitVec(allSecrets[p], degree, points, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range vecs {
			perPoint[j] = append(perPoint[j], v)
		}
	}
	sums := make([]ShareVector, len(points))
	for j := range points {
		agg, err := AggregateShareVectors(perPoint[j])
		if err != nil {
			t.Fatal(err)
		}
		sums[j] = agg
	}
	got, err := ReconstructVec(sums, degree)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < width; k++ {
		want := field.Zero
		for p := 0; p < parties; p++ {
			want = want.Add(allSecrets[p][k])
		}
		if got[k] != want {
			t.Fatalf("aggregate[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestAggregateShareVectorsErrors(t *testing.T) {
	if _, err := AggregateShareVectors(nil); !errors.Is(err, ErrBadParams) {
		t.Fatalf("empty aggregation: %v", err)
	}
	a := ShareVector{X: field.New(1), Values: []field.Element{field.One}}
	b := ShareVector{X: field.New(2), Values: []field.Element{field.One}}
	if _, err := AggregateShareVectors([]ShareVector{a, b}); !errors.Is(err, ErrMixedPoints) {
		t.Fatalf("mixed points: %v", err)
	}
	c := ShareVector{X: field.New(1), Values: []field.Element{field.One, field.One}}
	if _, err := AggregateShareVectors([]ShareVector{a, c}); !errors.Is(err, field.ErrLenMismatch) {
		t.Fatalf("mixed widths: %v", err)
	}
}

func TestNegativeDegreeIsAnError(t *testing.T) {
	rng := testRNG(37)
	points := PublicPoints(4)
	vecs, err := SplitVec(randomSecrets(rng, 2), 1, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, degree := range []int{-1, -2} {
		if _, err := ReconstructVec(vecs, degree); !errors.Is(err, ErrBadParams) {
			t.Fatalf("ReconstructVec degree=%d: %v", degree, err)
		}
		shares := []Share{{X: vecs[0].X, Value: vecs[0].Values[0]}}
		if _, err := Reconstruct(shares, degree); !errors.Is(err, ErrBadParams) {
			t.Fatalf("Reconstruct degree=%d: %v", degree, err)
		}
	}
}
