package shamir

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

func TestPartyFullRound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, degree = 6, 2
	points := PublicPoints(n)

	parties := make([]*Party, n)
	var want field.Element
	for i := range parties {
		secret := field.New(uint64(100 + i))
		want = want.Add(secret)
		p, err := NewParty(i, secret, degree, points)
		if err != nil {
			t.Fatalf("NewParty(%d): %v", i, err)
		}
		parties[i] = p
	}

	// Sharing phase: full mesh delivery.
	for _, sender := range parties {
		out, err := sender.OutgoingShares(rng)
		if err != nil {
			t.Fatal(err)
		}
		for j, share := range out {
			if err := parties[j].AbsorbShare(share); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reconstruction phase: collect sums, use a (degree+1)-subset.
	sums := make([]Share, 0, n)
	for _, p := range parties {
		if p.ReceivedCount() != n {
			t.Fatalf("party %d received %d shares, want %d", p.Index(), p.ReceivedCount(), n)
		}
		s, err := p.SumShare()
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, s)
	}
	got, err := ReconstructAggregate(sums[1:degree+2], degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
}

func TestPartyRejectsForeignShare(t *testing.T) {
	points := PublicPoints(4)
	p, err := NewParty(1, field.One, 1, points)
	if err != nil {
		t.Fatal(err)
	}
	wrong := Share{X: PublicPoint(2), Value: field.One}
	if err := p.AbsorbShare(wrong); !errors.Is(err, ErrMixedPoints) {
		t.Errorf("error = %v, want ErrMixedPoints", err)
	}
}

func TestPartyConstructorErrors(t *testing.T) {
	points := PublicPoints(4)
	tests := []struct {
		name   string
		index  int
		degree int
	}{
		{"negative index", -1, 1},
		{"index out of range", 4, 1},
		{"degree too high", 0, 4},
		{"negative degree", 0, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewParty(tt.index, field.One, tt.degree, points); !errors.Is(err, ErrBadParams) {
				t.Errorf("error = %v, want ErrBadParams", err)
			}
		})
	}
}

func TestPartySumShareWithoutReceiving(t *testing.T) {
	p, err := NewParty(0, field.One, 1, PublicPoints(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SumShare(); !errors.Is(err, ErrBadParams) {
		t.Errorf("error = %v, want ErrBadParams", err)
	}
}

func TestPartyReset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points := PublicPoints(3)
	p, err := NewParty(0, field.New(9), 1, points)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.OutgoingShares(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AbsorbShare(out[0]); err != nil {
		t.Fatal(err)
	}
	if p.ReceivedCount() != 1 {
		t.Fatalf("received = %d, want 1", p.ReceivedCount())
	}
	p.Reset()
	if p.ReceivedCount() != 0 {
		t.Errorf("after Reset received = %d, want 0", p.ReceivedCount())
	}
}

func TestPartyPartialSourcesAggregate(t *testing.T) {
	// Only a subset of nodes contribute secrets (the paper sweeps "number of
	// source nodes"); non-sources still act as share holders. The aggregate
	// must equal the sum over sources only.
	rng := rand.New(rand.NewSource(3))
	const n, degree = 9, 3
	points := PublicPoints(n)
	sources := []int{0, 2, 5} // 3 of 9 nodes contribute

	parties := make([]*Party, n)
	var want field.Element
	for i := range parties {
		secret := field.Zero
		for _, s := range sources {
			if s == i {
				secret = field.New(uint64(1000 + i))
				want = want.Add(secret)
			}
		}
		p, err := NewParty(i, secret, degree, points)
		if err != nil {
			t.Fatal(err)
		}
		parties[i] = p
	}

	for _, idx := range sources {
		out, err := parties[idx].OutgoingShares(rng)
		if err != nil {
			t.Fatal(err)
		}
		for j, share := range out {
			if err := parties[j].AbsorbShare(share); err != nil {
				t.Fatal(err)
			}
		}
	}

	sums := make([]Share, 0, n)
	for _, p := range parties {
		s, err := p.SumShare()
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, s)
	}
	got, err := ReconstructAggregate(sums[:degree+1], degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
}
