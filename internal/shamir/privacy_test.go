package shamir

import (
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

// TestPerfectPrivacyByConstruction proves (constructively, per trial) the
// information-theoretic privacy property the protocol's collusion threshold
// rests on: for ANY coalition of k nodes holding k shares of a degree-k
// polynomial with secret s, and for ANY alternative secret s', there exists
// a valid degree-k polynomial that produces exactly the same coalition view
// but hides s'. Hence the coalition's view is consistent with every possible
// secret and reveals nothing.
func TestPerfectPrivacyByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const degree, n = 5, 12
	points := PublicPoints(n)

	for trial := 0; trial < 30; trial++ {
		secret := field.New(rng.Uint64() >> 3)
		shares, err := Split(secret, degree, points, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Coalition: k = degree random distinct nodes.
		coalition := rng.Perm(n)[:degree]
		view := make([]field.Point, 0, degree)
		for _, idx := range coalition {
			view = append(view, field.Point{X: shares[idx].X, Y: shares[idx].Value})
		}

		// Adversary hypothesis: the secret is some other s'.
		altSecret := field.New(rng.Uint64() >> 3)
		if altSecret == secret {
			altSecret = altSecret.Add(field.One)
		}
		// Construct the explaining polynomial: interpolate the coalition
		// view plus the forged point (0, s').
		constraints := append(append([]field.Point{}, view...),
			field.Point{X: field.Zero, Y: altSecret})
		explain, err := field.Interpolate(constraints)
		if err != nil {
			t.Fatal(err)
		}
		if explain.Degree() != degree {
			t.Fatalf("trial %d: explaining polynomial has degree %d, want %d",
				trial, explain.Degree(), degree)
		}
		// It must reproduce the coalition's view exactly...
		for _, p := range view {
			if explain.Eval(p.X) != p.Y {
				t.Fatalf("trial %d: explaining polynomial deviates at %v", trial, p.X)
			}
		}
		// ...while hiding the alternative secret.
		if explain.Constant() != altSecret {
			t.Fatalf("trial %d: explaining polynomial has secret %v, want %v",
				trial, explain.Constant(), altSecret)
		}
	}
}

// TestCoalitionOfKPlusOneBreaks is the sharpness counterpart: k+1 shares DO
// determine the secret, so the threshold is exactly k.
func TestCoalitionOfKPlusOneBreaks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const degree, n = 4, 9
	secret := field.New(123456)
	shares, err := Split(secret, degree, PublicPoints(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	coalition := shares[:degree+1]
	got, err := Reconstruct(coalition, degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("k+1 coalition recovered %v, want %v", got, secret)
	}
}

// TestAggregatePrivacy checks that the SUM leaks only the sum: two worlds
// with different individual secrets but identical totals produce identical
// reconstruction outputs.
func TestAggregatePrivacy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const degree, n = 2, 6
	points := PublicPoints(n)

	worldSums := func(secrets []field.Element) field.Element {
		t.Helper()
		sums := make([]Share, n)
		cols := make([][]Share, n)
		for i, s := range secrets {
			shares, err := Split(s, degree, points, rng)
			if err != nil {
				t.Fatal(err)
			}
			for j := range shares {
				cols[j] = append(cols[j], shares[j])
			}
			_ = i
		}
		for j := range cols {
			agg, err := AggregateShares(cols[j])
			if err != nil {
				t.Fatal(err)
			}
			sums[j] = agg
		}
		out, err := Reconstruct(sums[:degree+1], degree)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	worldA := []field.Element{field.New(10), field.New(20), field.New(30),
		field.New(40), field.New(50), field.New(60)}
	worldB := []field.Element{field.New(60), field.New(50), field.New(40),
		field.New(30), field.New(20), field.New(10)}
	a := worldSums(worldA)
	b := worldSums(worldB)
	if a != b || a != field.New(210) {
		t.Errorf("worlds with equal totals diverge: %v vs %v (want 210)", a, b)
	}
}
