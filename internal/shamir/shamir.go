// Package shamir implements Shamir Secret Sharing (Shamir, "How to share a
// secret", CACM 1979) over GF(2^61-1), in the additive-aggregation form used
// for privacy-preserving data aggregation (PPDA):
//
//   - every node nᵢ holds a secret Sᵢ and samples a random degree-k
//     polynomial Pᵢ with Pᵢ(0) = Sᵢ;
//   - node nᵢ evaluates Pᵢ at the public points x₁..x_n and sends share
//     Pᵢ(xⱼ) to the node designated for public point xⱼ (sharing phase);
//   - the designated node sums the shares it received, obtaining the
//     evaluation of the sum polynomial P_Σ = ΣPᵢ at its point
//     (local aggregation);
//   - the sums are re-shared and any k+1 of them reconstruct
//     P_Σ(0) = ΣSᵢ via Lagrange interpolation (reconstruction phase).
//
// The package is transport-agnostic: it produces and consumes shares; moving
// them between nodes is the job of the CT protocols in internal/minicast and
// the orchestration in internal/core.
package shamir

import (
	"errors"
	"fmt"
	"io"

	"iotmpc/internal/field"
)

// Errors returned by the package.
var (
	// ErrThreshold is returned when degree/share-count parameters are
	// inconsistent (e.g. fewer shares than degree+1).
	ErrThreshold = errors.New("shamir: insufficient shares for threshold")
	// ErrBadParams is returned for invalid sharing parameters.
	ErrBadParams = errors.New("shamir: invalid parameters")
	// ErrMixedPoints is returned when aggregating shares bound to different
	// public points.
	ErrMixedPoints = errors.New("shamir: shares bound to different public points")
)

// Share is one evaluation of a secret-sharing polynomial: Value = P(X).
// X is the public point, which in this system is derived from the designated
// node's ID and is not secret; Value is confidential.
type Share struct {
	X     field.Element
	Value field.Element
}

// PublicPoint maps a node index (0-based) to its designated public point.
// Point zero is never used — P(0) is the secret — so node i gets x = i+1.
func PublicPoint(nodeIndex int) field.Element {
	return field.New(uint64(nodeIndex + 1))
}

// PublicPoints returns the public points for nodes 0..n-1.
func PublicPoints(n int) []field.Element {
	pts := make([]field.Element, n)
	for i := range pts {
		pts[i] = PublicPoint(i)
	}
	return pts
}

// Split shares a secret into one share per public point using a fresh random
// polynomial of the given degree. Any degree+1 shares reconstruct the secret;
// any degree shares reveal nothing (information-theoretic privacy).
func Split(secret field.Element, degree int, points []field.Element, rng io.Reader) ([]Share, error) {
	if degree < 0 {
		return nil, fmt.Errorf("%w: negative degree %d", ErrBadParams, degree)
	}
	if len(points) < degree+1 {
		return nil, fmt.Errorf("%w: %d points for degree %d (need >= %d)",
			ErrBadParams, len(points), degree, degree+1)
	}
	for _, x := range points {
		if x.IsZero() {
			return nil, fmt.Errorf("%w: public point 0 would leak the secret", ErrBadParams)
		}
	}
	poly, err := field.NewRandomPoly(secret, degree, rng)
	if err != nil {
		return nil, fmt.Errorf("sample polynomial: %w", err)
	}
	shares := make([]Share, len(points))
	for i, x := range points {
		shares[i] = Share{X: x, Value: poly.Eval(x)}
	}
	return shares, nil
}

// Reconstruct recovers the secret from at least threshold = degree+1 shares.
// Extra shares are allowed (they are simply consistent redundancy as long as
// they lie on the same polynomial; only the first threshold shares are used).
//
// Reconstruction goes through the process-wide Lagrange coefficient cache:
// every node in a round — and every round of a sweep — interpolates over the
// same few public-point subsets, so after the first reconstruction the cost
// per call drops to one dot product.
func Reconstruct(shares []Share, degree int) (field.Element, error) {
	if degree < 0 {
		return 0, fmt.Errorf("%w: negative degree %d", ErrBadParams, degree)
	}
	need := degree + 1
	if len(shares) < need {
		return 0, fmt.Errorf("%w: have %d, need %d", ErrThreshold, len(shares), need)
	}
	xs := make([]field.Element, need)
	ys := make([]field.Element, need)
	for i := 0; i < need; i++ {
		xs[i] = shares[i].X
		ys[i] = shares[i].Value
	}
	coeffs, err := field.CachedCoefficientsAtZero(xs)
	if err != nil {
		return 0, fmt.Errorf("interpolate: %w", err)
	}
	secret, err := field.Dot(coeffs, ys)
	if err != nil {
		return 0, fmt.Errorf("interpolate: %w", err)
	}
	return secret, nil
}

// AggregateShares sums shares that are bound to the same public point. This
// is the local aggregation a designated node performs in the sharing phase:
// ΣᵢPᵢ(x) is a share of the sum polynomial at x.
func AggregateShares(shares []Share) (Share, error) {
	if len(shares) == 0 {
		return Share{}, fmt.Errorf("%w: empty aggregation", ErrBadParams)
	}
	x := shares[0].X
	var sum field.Element
	for _, s := range shares {
		if s.X != x {
			return Share{}, fmt.Errorf("%w: %v vs %v", ErrMixedPoints, s.X, x)
		}
		sum = sum.Add(s.Value)
	}
	return Share{X: x, Value: sum}, nil
}
