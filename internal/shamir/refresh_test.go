package shamir

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

func TestRefreshPreservesSecret(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const degree, n = 3, 8
	secret := field.New(777777)
	shares, err := Split(secret, degree, PublicPoints(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := RefreshEpoch(shares, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(refreshed[:degree+1], degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("refreshed reconstruction = %v, want %v", got, secret)
	}
	// Any subset works, as before.
	got2, err := Reconstruct(refreshed[n-degree-1:], degree)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != secret {
		t.Errorf("tail subset = %v, want %v", got2, secret)
	}
}

func TestRefreshChangesShares(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const degree, n = 2, 6
	shares, err := Split(field.New(5), degree, PublicPoints(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := RefreshEpoch(shares, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range shares {
		if refreshed[i].X != shares[i].X {
			t.Fatalf("refresh moved share %d to a different point", i)
		}
		if refreshed[i].Value != shares[i].Value {
			changed++
		}
	}
	if changed < n-1 {
		t.Errorf("only %d/%d share values changed", changed, n)
	}
}

func TestCrossEpochSharesDoNotCombine(t *testing.T) {
	// The point of proactive refresh: k shares from epoch 1 plus one share
	// from epoch 2 must NOT reconstruct the secret (they lie on different
	// polynomials).
	rng := rand.New(rand.NewSource(3))
	const degree, n = 3, 8
	secret := field.New(13371337)
	epoch1, err := Split(secret, degree, PublicPoints(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	epoch2, err := RefreshEpoch(epoch1, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	mixed := make([]Share, degree+1)
	copy(mixed, epoch1[:degree])
	mixed[degree] = epoch2[degree] // one share from the next epoch
	got, err := Reconstruct(mixed, degree)
	if err != nil {
		t.Fatal(err)
	}
	if got == secret {
		t.Error("cross-epoch share combination recovered the secret")
	}
}

func TestApplyRefreshRejectsForeignPoint(t *testing.T) {
	standing := Share{X: field.New(1), Value: field.New(10)}
	foreign := []Share{{X: field.New(2), Value: field.New(3)}}
	if _, err := ApplyRefresh(standing, foreign); !errors.Is(err, ErrMixedPoints) {
		t.Errorf("error = %v, want ErrMixedPoints", err)
	}
}

func TestApplyRefreshSums(t *testing.T) {
	standing := Share{X: field.New(1), Value: field.New(10)}
	refresh := []Share{
		{X: field.New(1), Value: field.New(5)},
		{X: field.New(1), Value: field.New(7)},
	}
	got, err := ApplyRefresh(standing, refresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != field.New(22) {
		t.Errorf("refreshed value = %v, want 22", got.Value)
	}
}

func TestRefreshEpochErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := RefreshEpoch(nil, 1, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty: %v, want ErrBadParams", err)
	}
	shares, err := Split(field.One, 1, PublicPoints(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RefreshEpoch(shares, 5, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("degree too high: %v, want ErrBadParams", err)
	}
	dup := []Share{{X: field.One}, {X: field.One}}
	if _, err := RefreshEpoch(dup, 1, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("duplicate points: %v, want ErrBadParams", err)
	}
}

func TestRepeatedRefreshStaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const degree, n = 4, 10
	secret := field.New(31415)
	shares, err := Split(secret, degree, PublicPoints(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 10; epoch++ {
		shares, err = RefreshEpoch(shares, degree, rng)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	got, err := Reconstruct(shares[2:2+degree+1], degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("after 10 epochs: %v, want %v", got, secret)
	}
}
