package shamir

import (
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

func BenchmarkSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := PublicPoints(26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(field.New(uint64(i)), 8, points, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	shares, err := Split(field.New(424242), 8, PublicPoints(26), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(shares[:9], 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateShares(b *testing.B) {
	x := field.New(5)
	shares := make([]Share, 45)
	for i := range shares {
		shares[i] = Share{X: x, Value: field.New(uint64(i))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateShares(shares); err != nil {
			b.Fatal(err)
		}
	}
}
