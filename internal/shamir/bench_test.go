package shamir

import (
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

func BenchmarkSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := PublicPoints(26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(field.New(uint64(i)), 8, points, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	shares, err := Split(field.New(424242), 8, PublicPoints(26), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(shares[:9], 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateShares(b *testing.B) {
	x := field.New(5)
	shares := make([]Share, 45)
	for i := range shares {
		shares[i] = Share{X: x, Value: field.New(uint64(i))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateShares(shares); err != nil {
			b.Fatal(err)
		}
	}
}

// Vector-path benchmarks: sharing and reconstructing a whole reading vector
// vs. looping the scalar pipeline per coordinate.

func BenchmarkSplitVecVsScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	points := PublicPoints(16)
	const width, degree = 32, 5
	secrets := make([]field.Element, width)
	for i := range secrets {
		secrets[i] = field.New(rng.Uint64())
	}
	b.Run("scalar-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range secrets {
				if _, err := Split(s, degree, points, rng); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SplitVec(secrets, degree, points, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReconstructVecVsScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	points := PublicPoints(16)
	const width, degree = 32, 5
	secrets := make([]field.Element, width)
	for i := range secrets {
		secrets[i] = field.New(rng.Uint64())
	}
	vecs, err := SplitVec(secrets, degree, points, rng)
	if err != nil {
		b.Fatal(err)
	}
	// Scalar view of the same shares for the baseline.
	perCoord := make([][]Share, width)
	for k := 0; k < width; k++ {
		perCoord[k] = make([]Share, len(points))
		for j, v := range vecs {
			perCoord[k][j] = Share{X: v.X, Value: v.Values[k]}
		}
	}
	b.Run("scalar-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < width; k++ {
				if _, err := Reconstruct(perCoord[k], degree); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReconstructVec(vecs, degree); err != nil {
				b.Fatal(err)
			}
		}
	})
}
