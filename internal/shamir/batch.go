package shamir

import (
	"fmt"
	"io"

	"iotmpc/internal/field"
)

// Vectorized sharing. IoT nodes rarely report a single scalar: a reading is
// a vector (temperature, humidity, CO₂, …) or a whole window of samples.
// Sharing m secrets toward n points naively runs the scalar pipeline m times;
// the entry points here move whole vectors through the batched field layer
// instead, and reconstruction reuses one cached Lagrange basis for every
// coordinate — one inversion for the entire vector instead of one per entry.

// ShareVector is the evaluation of m independent sharing polynomials at one
// public point: Values[k] = P_k(X). It is the vector analogue of Share and
// aggregates the same way (element-wise sums stay on the sum polynomials).
type ShareVector struct {
	X      field.Element
	Values []field.Element
}

// SplitVec shares a vector of secrets toward the given public points, one
// fresh random polynomial per secret. The result holds one ShareVector per
// point: out[j].Values[k] is point j's share of secrets[k]. An empty secret
// vector is valid and yields empty ShareVectors — absent readings aggregate
// as zero downstream.
func SplitVec(secrets []field.Element, degree int, points []field.Element, rng io.Reader) ([]ShareVector, error) {
	if degree < 0 {
		return nil, fmt.Errorf("%w: negative degree %d", ErrBadParams, degree)
	}
	if len(points) < degree+1 {
		return nil, fmt.Errorf("%w: %d points for degree %d (need >= %d)",
			ErrBadParams, len(points), degree, degree+1)
	}
	for _, x := range points {
		if x.IsZero() {
			return nil, fmt.Errorf("%w: public point 0 would leak the secret", ErrBadParams)
		}
	}
	out := make([]ShareVector, len(points))
	for j, x := range points {
		out[j] = ShareVector{X: x, Values: make([]field.Element, len(secrets))}
	}
	for k, secret := range secrets {
		poly, err := field.NewRandomPoly(secret, degree, rng)
		if err != nil {
			return nil, fmt.Errorf("sample polynomial %d: %w", k, err)
		}
		for j, x := range points {
			out[j].Values[k] = poly.Eval(x)
		}
	}
	return out, nil
}

// ReconstructVec recovers the full secret vector from at least degree+1
// share vectors. The Lagrange basis for the point set is fetched from the
// process-wide coefficient cache once and applied to every coordinate via
// fused multiply-accumulate, so the per-coordinate cost is len(shares)
// multiplications — no inversions on the warm path.
func ReconstructVec(shares []ShareVector, degree int) ([]field.Element, error) {
	if degree < 0 {
		return nil, fmt.Errorf("%w: negative degree %d", ErrBadParams, degree)
	}
	need := degree + 1
	if len(shares) < need {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrThreshold, len(shares), need)
	}
	shares = shares[:need]
	width := len(shares[0].Values)
	xs := make([]field.Element, need)
	for i, sv := range shares {
		if len(sv.Values) != width {
			return nil, fmt.Errorf("%w: share vector %d has %d values, expected %d",
				ErrBadParams, i, len(sv.Values), width)
		}
		xs[i] = sv.X
	}
	coeffs, err := field.CachedCoefficientsAtZero(xs)
	if err != nil {
		return nil, fmt.Errorf("lagrange basis: %w", err)
	}
	secrets := make([]field.Element, width)
	for i, sv := range shares {
		if err := field.MulAccVec(secrets, coeffs[i], sv.Values); err != nil {
			return nil, err
		}
	}
	return secrets, nil
}

// AggregateShareVectors sums share vectors bound to the same public point —
// the vector form of AggregateShares a destination runs during local
// aggregation. All inputs must have the same width.
func AggregateShareVectors(vecs []ShareVector) (ShareVector, error) {
	if len(vecs) == 0 {
		return ShareVector{}, fmt.Errorf("%w: empty aggregation", ErrBadParams)
	}
	x := vecs[0].X
	sum := make([]field.Element, len(vecs[0].Values))
	for _, v := range vecs {
		if v.X != x {
			return ShareVector{}, fmt.Errorf("%w: %v vs %v", ErrMixedPoints, v.X, x)
		}
		if err := field.AccumulateVec(sum, v.Values); err != nil {
			return ShareVector{}, err
		}
	}
	return ShareVector{X: x, Values: sum}, nil
}
