package shamir

import (
	"fmt"
	"io"

	"iotmpc/internal/field"
)

// Party models one MPC participant through a full aggregation round, holding
// the pieces of per-node state the protocol needs between phases:
//
//	sharing phase:        OutgoingShares()  — one share per destination node
//	local aggregation:    AbsorbShare()     — sum shares for my public point
//	reconstruction phase: SumShare()        — my public-point sum, re-shared
//	finalization:         (package func) ReconstructAggregate
//
// Party is deliberately free of any networking; internal/core wires parties
// to the CT transport.
type Party struct {
	index    int
	secret   field.Element
	degree   int
	points   []field.Element
	received []Share // shares destined for my public point
}

// NewParty creates a participant. index is the node's 0-based position among
// the n parties, which fixes its designated public point; points must be the
// same ordered list at every party.
func NewParty(index int, secret field.Element, degree int, points []field.Element) (*Party, error) {
	if index < 0 || index >= len(points) {
		return nil, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadParams, index, len(points))
	}
	if degree < 0 || degree+1 > len(points) {
		return nil, fmt.Errorf("%w: degree %d with %d points", ErrBadParams, degree, len(points))
	}
	pts := make([]field.Element, len(points))
	copy(pts, points)
	return &Party{
		index:  index,
		secret: secret,
		degree: degree,
		points: pts,
	}, nil
}

// Index returns the party's 0-based node index.
func (p *Party) Index() int { return p.index }

// Point returns the party's designated public point.
func (p *Party) Point() field.Element { return p.points[p.index] }

// OutgoingShares samples a fresh polynomial for the party's secret and
// returns the share destined for each node index. Call once per round; each
// call re-randomizes the polynomial (shares from different calls must not be
// mixed).
func (p *Party) OutgoingShares(rng io.Reader) ([]Share, error) {
	shares, err := Split(p.secret, p.degree, p.points, rng)
	if err != nil {
		return nil, fmt.Errorf("party %d split: %w", p.index, err)
	}
	return shares, nil
}

// AbsorbShare records a share received during the sharing phase. The share
// must be bound to this party's public point — it is a protocol error (and a
// privacy bug at the sender) otherwise.
func (p *Party) AbsorbShare(s Share) error {
	if s.X != p.Point() {
		return fmt.Errorf("%w: got %v, my point is %v", ErrMixedPoints, s.X, p.Point())
	}
	p.received = append(p.received, s)
	return nil
}

// ReceivedCount reports how many shares have been absorbed this round.
func (p *Party) ReceivedCount() int { return len(p.received) }

// SumShare returns the party's local aggregate: the evaluation of the sum
// polynomial at its public point, built from everything absorbed so far.
func (p *Party) SumShare() (Share, error) {
	if len(p.received) == 0 {
		return Share{}, fmt.Errorf("%w: party %d received no shares", ErrBadParams, p.index)
	}
	return AggregateShares(p.received)
}

// Reset clears per-round state so the party can run another round.
func (p *Party) Reset() { p.received = p.received[:0] }

// ReconstructAggregate recovers ΣSᵢ from at least degree+1 public-point sums
// collected in the reconstruction phase. The sums may come from any subset of
// nodes of size >= degree+1 — this is the fault-tolerance property S4 relies
// on when it runs reconstruction at low NTX.
func ReconstructAggregate(sums []Share, degree int) (field.Element, error) {
	return Reconstruct(sums, degree)
}
