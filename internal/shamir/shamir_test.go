package shamir

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

func TestSplitReconstructRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	secret := field.New(123456789)
	points := PublicPoints(10)
	shares, err := Split(secret, 3, points, rng)
	if err != nil {
		t.Fatalf("Split error = %v", err)
	}
	if len(shares) != 10 {
		t.Fatalf("got %d shares, want 10", len(shares))
	}
	got, err := Reconstruct(shares[:4], 3)
	if err != nil {
		t.Fatalf("Reconstruct error = %v", err)
	}
	if got != secret {
		t.Errorf("reconstructed %v, want %v", got, secret)
	}
}

func TestReconstructFromAnySubset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	secret := field.New(777)
	const degree, n = 4, 12
	shares, err := Split(secret, degree, PublicPoints(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		perm := rng.Perm(n)[:degree+1]
		subset := make([]Share, degree+1)
		for i, idx := range perm {
			subset[i] = shares[idx]
		}
		got, err := Reconstruct(subset, degree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != secret {
			t.Fatalf("trial %d: got %v, want %v", trial, got, secret)
		}
	}
}

func TestReconstructTooFewShares(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shares, err := Split(field.New(5), 3, PublicPoints(6), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(shares[:3], 3); !errors.Is(err, ErrThreshold) {
		t.Errorf("error = %v, want ErrThreshold", err)
	}
}

func TestSplitParamErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tests := []struct {
		name   string
		degree int
		points []field.Element
	}{
		{"negative degree", -1, PublicPoints(5)},
		{"too few points", 5, PublicPoints(3)},
		{"zero public point", 1, []field.Element{field.Zero, field.One, field.New(2)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Split(field.One, tt.degree, tt.points, rng); !errors.Is(err, ErrBadParams) {
				t.Errorf("error = %v, want ErrBadParams", err)
			}
		})
	}
}

func TestPrivacyKSharesRevealNothing(t *testing.T) {
	// For a degree-k polynomial, any k shares are consistent with EVERY
	// possible secret: interpolating k shares plus a forged point (0, s')
	// yields a valid degree-k polynomial for any s'. Verify the weaker,
	// testable corollary: reconstruction from k shares (forced through) does
	// not yield the true secret except with negligible probability.
	rng := rand.New(rand.NewSource(5))
	const degree = 5
	secret := field.New(31415926)
	shares, err := Split(secret, degree, PublicPoints(degree+2), rng)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]field.Point, degree) // k = degree shares only
	for i := 0; i < degree; i++ {
		pts[i] = field.Point{X: shares[i].X, Y: shares[i].Value}
	}
	leaked, err := field.InterpolateAtZero(pts)
	if err != nil {
		t.Fatal(err)
	}
	if leaked == secret {
		t.Error("k shares leaked the degree-k secret")
	}
}

func TestAggregateShares(t *testing.T) {
	x := field.New(3)
	sum, err := AggregateShares([]Share{
		{X: x, Value: field.New(10)},
		{X: x, Value: field.New(20)},
		{X: x, Value: field.New(12)},
	})
	if err != nil {
		t.Fatalf("AggregateShares error = %v", err)
	}
	if sum.X != x || sum.Value != field.New(42) {
		t.Errorf("aggregate = %+v, want {3 42}", sum)
	}
}

func TestAggregateSharesErrors(t *testing.T) {
	if _, err := AggregateShares(nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty: error = %v, want ErrBadParams", err)
	}
	mixed := []Share{
		{X: field.New(1), Value: field.One},
		{X: field.New(2), Value: field.One},
	}
	if _, err := AggregateShares(mixed); !errors.Is(err, ErrMixedPoints) {
		t.Errorf("mixed: error = %v, want ErrMixedPoints", err)
	}
}

func TestAdditiveHomomorphismEndToEnd(t *testing.T) {
	// Full PPDA dataflow at the algebra level: n parties, share, locally
	// aggregate per point, reconstruct the SUM from k+1 point-sums.
	rng := rand.New(rand.NewSource(6))
	const n, degree = 8, 2
	points := PublicPoints(n)

	secrets := make([]field.Element, n)
	var want field.Element
	for i := range secrets {
		secrets[i] = field.New(uint64(rng.Intn(1000000)))
		want = want.Add(secrets[i])
	}

	// shareMatrix[i][j] = share of secret i destined for node j.
	shareMatrix := make([][]Share, n)
	for i := range shareMatrix {
		s, err := Split(secrets[i], degree, points, rng)
		if err != nil {
			t.Fatal(err)
		}
		shareMatrix[i] = s
	}

	// Each node j sums column j.
	sums := make([]Share, n)
	for j := 0; j < n; j++ {
		col := make([]Share, n)
		for i := 0; i < n; i++ {
			col[i] = shareMatrix[i][j]
		}
		s, err := AggregateShares(col)
		if err != nil {
			t.Fatal(err)
		}
		sums[j] = s
	}

	// Any degree+1 sums reconstruct Σsecrets.
	got, err := Reconstruct(sums[2:2+degree+1], degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
}

func TestPublicPoints(t *testing.T) {
	pts := PublicPoints(3)
	want := []field.Element{field.New(1), field.New(2), field.New(3)}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	for _, p := range pts {
		if p.IsZero() {
			t.Error("public point must never be zero")
		}
	}
}

func TestPropSplitSharesLieOnSinglePolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		degree := rng.Intn(5)
		n := degree + 1 + rng.Intn(6)
		secret := field.New(rng.Uint64() >> 3)
		shares, err := Split(secret, degree, PublicPoints(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		// Interpolate the full polynomial from the first degree+1 shares and
		// check every remaining share is consistent with it.
		pts := make([]field.Point, degree+1)
		for i := range pts {
			pts[i] = field.Point{X: shares[i].X, Y: shares[i].Value}
		}
		poly, err := field.Interpolate(pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shares[degree+1:] {
			if poly.Eval(s.X) != s.Value {
				t.Fatalf("trial %d: share at %v off-polynomial", trial, s.X)
			}
		}
		if poly.Constant() != secret {
			t.Fatalf("trial %d: constant %v, want %v", trial, poly.Constant(), secret)
		}
	}
}
