package shamir_test

import (
	"fmt"
	"math/rand"

	"iotmpc/internal/field"
	"iotmpc/internal/shamir"
)

// Share a secret toward five public points and reconstruct it from any
// threshold-sized subset — the scalar core of the protocol.
func ExampleSplit() {
	rng := rand.New(rand.NewSource(1)) // deterministic for the example; use crypto/rand in production
	points := shamir.PublicPoints(5)
	secret := field.New(1234)

	shares, err := shamir.Split(secret, 2, points, rng)
	if err != nil {
		panic(err)
	}
	// Any degree+1 = 3 shares recover the secret.
	recovered, err := shamir.Reconstruct([]shamir.Share{shares[4], shares[0], shares[2]}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(recovered)
	// Output: 1234
}

// Share a whole vector of readings at once and reconstruct it through one
// cached Lagrange basis — the batched hot path.
func ExampleSplitVec() {
	rng := rand.New(rand.NewSource(2))
	points := shamir.PublicPoints(4)
	readings := []field.Element{field.New(21), field.New(40), field.New(998)}

	vecs, err := shamir.SplitVec(readings, 1, points, rng)
	if err != nil {
		panic(err)
	}
	recovered, err := shamir.ReconstructVec(vecs[:2], 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(recovered)
	// Output: [21 40 998]
}

// Element-wise sums of share vectors are shares of the summed readings, so a
// destination aggregates locally without ever seeing an individual vector.
func ExampleAggregateShareVectors() {
	rng := rand.New(rand.NewSource(3))
	points := shamir.PublicPoints(4)

	nodeA := []field.Element{field.New(10), field.New(1)}
	nodeB := []field.Element{field.New(20), field.New(2)}
	sharesA, err := shamir.SplitVec(nodeA, 1, points, rng)
	if err != nil {
		panic(err)
	}
	sharesB, err := shamir.SplitVec(nodeB, 1, points, rng)
	if err != nil {
		panic(err)
	}

	sums := make([]shamir.ShareVector, len(points))
	for j := range points {
		agg, err := shamir.AggregateShareVectors([]shamir.ShareVector{sharesA[j], sharesB[j]})
		if err != nil {
			panic(err)
		}
		sums[j] = agg
	}
	aggregate, err := shamir.ReconstructVec(sums[1:3], 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(aggregate)
	// Output: [30 3]
}
